package cf

import (
	"errors"
	"math"
	"sort"

	"repro/internal/rng"
)

// Matrix factorization with SGD: the "modern" extension point the paper's
// future-work section gestures at. Factorizes the implicit-feedback matrix
// into user and action embeddings minimizing squared error with L2
// regularization on observed cells plus sampled negatives.

// MFParams configure training.
type MFParams struct {
	Factors   int
	Epochs    int
	LearnRate float64
	Reg       float64
	// NegPerPos is how many random negative cells are sampled per observed
	// cell each epoch (implicit feedback needs negatives).
	NegPerPos int
	Seed      uint64
}

// DefaultMF returns reproduction-scale defaults.
func DefaultMF() MFParams {
	return MFParams{Factors: 16, Epochs: 20, LearnRate: 0.05, Reg: 0.01, NegPerPos: 2, Seed: 1}
}

// MF is a trained factorization model.
type MF struct {
	m        *Interactions
	factors  int
	userVecs map[uint64][]float64
	itemVecs [][]float64
}

// TrainMF factorizes a frozen matrix.
func TrainMF(m *Interactions, p MFParams) (*MF, error) {
	if !m.frozen {
		return nil, ErrNotFrozen
	}
	if p.Factors < 1 || p.Epochs < 1 {
		return nil, errors.New("cf: bad MF params")
	}
	if p.LearnRate <= 0 || p.Reg < 0 {
		return nil, errors.New("cf: bad MF rates")
	}
	r := rng.New(p.Seed)
	scale := 1 / math.Sqrt(float64(p.Factors))
	mf := &MF{
		m:        m,
		factors:  p.Factors,
		userVecs: make(map[uint64][]float64, m.Users()),
		itemVecs: make([][]float64, m.Actions()),
	}
	for _, id := range m.userIDs {
		v := make([]float64, p.Factors)
		for f := range v {
			v[f] = r.NormFloat64() * scale
		}
		mf.userVecs[id] = v
	}
	for a := range mf.itemVecs {
		v := make([]float64, p.Factors)
		for f := range v {
			v[f] = r.NormFloat64() * scale
		}
		mf.itemVecs[a] = v
	}
	// Binarized implicit target: observed = 1, sampled negative = 0.
	for epoch := 0; epoch < p.Epochs; epoch++ {
		for ui, id := range m.userIDs {
			uv := mf.userVecs[id]
			start, end := m.rowPtr[ui], m.rowPtr[ui+1]
			for i := start; i < end; i++ {
				mf.sgdStep(uv, mf.itemVecs[m.colIdx[i]], 1, p)
				for neg := 0; neg < p.NegPerPos; neg++ {
					a := uint32(r.Intn(m.Actions()))
					// Cheap membership check via binary search in the row.
					idx := sort.Search(end-start, func(k int) bool { return m.colIdx[start+k] >= a })
					if idx < end-start && m.colIdx[start+idx] == a {
						continue
					}
					mf.sgdStep(uv, mf.itemVecs[a], 0, p)
				}
			}
		}
	}
	return mf, nil
}

func (mf *MF) sgdStep(u, v []float64, target float64, p MFParams) {
	var pred float64
	for f := range u {
		pred += u[f] * v[f]
	}
	err := target - pred
	for f := range u {
		du := p.LearnRate * (err*v[f] - p.Reg*u[f])
		dv := p.LearnRate * (err*u[f] - p.Reg*v[f])
		u[f] += du
		v[f] += dv
	}
}

// Score predicts the affinity of user for action.
func (mf *MF) Score(user uint64, action uint32) float64 {
	uv, ok := mf.userVecs[user]
	if !ok || int(action) >= len(mf.itemVecs) {
		return 0
	}
	var s float64
	for f := range uv {
		s += uv[f] * mf.itemVecs[action][f]
	}
	return s
}

// RecommendTopN returns the n highest-scoring unseen actions.
func (mf *MF) RecommendTopN(user uint64, n int) ([]Recommendation, error) {
	if n < 1 {
		return nil, errors.New("cf: n must be >= 1")
	}
	uv, ok := mf.userVecs[user]
	if !ok {
		var out []Recommendation
		for _, a := range mf.m.TopPopular(n) {
			out = append(out, Recommendation{Action: a, Score: mf.m.Popularity(a)})
		}
		return out, nil
	}
	_ = uv
	seen := map[uint32]bool{}
	if actions, _, ok := mf.m.Row(user); ok {
		for _, a := range actions {
			seen[a] = true
		}
	}
	out := make([]Recommendation, 0, mf.m.Actions())
	for a := 0; a < mf.m.Actions(); a++ {
		if seen[uint32(a)] {
			continue
		}
		out = append(out, Recommendation{Action: uint32(a), Score: mf.Score(user, uint32(a))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Action < out[j].Action
	})
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}
