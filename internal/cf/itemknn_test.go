package cf

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestItemKNNSimilar(t *testing.T) {
	m := NewInteractions(50)
	// Actions 1 and 2 co-occur for three users; action 3 is independent.
	for u := uint64(1); u <= 3; u++ {
		m.Add(u, 1, 1)
		m.Add(u, 2, 1)
	}
	m.Add(4, 3, 1)
	m.Freeze()
	ik, err := NewItemKNN(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	sims := ik.Similar(1)
	if len(sims) != 1 || sims[0].Action != 2 {
		t.Fatalf("similar(1) = %v", sims)
	}
	if math.Abs(sims[0].Score-1) > 1e-9 {
		t.Fatalf("perfect co-occurrence similarity %v", sims[0].Score)
	}
	if got := ik.Similar(3); len(got) != 0 {
		t.Fatalf("independent action has neighbors %v", got)
	}
	if ik.Similar(999) != nil {
		t.Fatal("out-of-range action")
	}
}

func TestItemKNNRecommend(t *testing.T) {
	m := NewInteractions(50)
	// Users 1..3: {1,2}; user 4: {1} only → should be recommended 2.
	for u := uint64(1); u <= 3; u++ {
		m.Add(u, 1, 1)
		m.Add(u, 2, 1)
	}
	m.Add(4, 1, 1)
	m.Freeze()
	ik, _ := NewItemKNN(m, 10)
	recs, err := ik.RecommendTopN(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Action != 2 {
		t.Fatalf("recs %v, want action 2", recs)
	}
	// Must not recommend what user 4 already did.
	for _, r := range recs {
		if r.Action == 1 {
			t.Fatal("recommended seen action")
		}
	}
}

func TestItemKNNColdStart(t *testing.T) {
	m := buildMatrix(t)
	ik, _ := NewItemKNN(m, 5)
	recs, err := ik.RecommendTopN(999, 2)
	if err != nil || len(recs) != 2 {
		t.Fatalf("cold start: %v %v", recs, err)
	}
	if recs[0].Action != 11 { // popularity fallback, same as user-kNN
		t.Fatalf("cold-start top %v", recs[0])
	}
}

func TestItemKNNValidation(t *testing.T) {
	m := NewInteractions(5)
	m.Add(1, 1, 1)
	if _, err := NewItemKNN(m, 3); err != ErrNotFrozen {
		t.Fatalf("unfrozen accepted: %v", err)
	}
	m.Freeze()
	if _, err := NewItemKNN(m, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	ik, _ := NewItemKNN(m, 3)
	if _, err := ik.RecommendTopN(1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestItemKNNAgreesWithUserKNNOnBlocks(t *testing.T) {
	// Block-structured data: both neighborhood models must keep users
	// inside their block.
	r := rng.New(9)
	m := NewInteractions(40)
	for u := uint64(1); u <= 30; u++ {
		base := 0
		if u > 15 {
			base = 20
		}
		for i := 0; i < 6; i++ {
			m.Add(u, uint32(base+r.Intn(20)), 1)
		}
	}
	m.Freeze()
	ik, _ := NewItemKNN(m, 10)
	uk, _ := NewKNN(m, 10)
	inBlock := func(recs []Recommendation, lo, hi uint32) int {
		n := 0
		for _, rec := range recs {
			if rec.Action >= lo && rec.Action < hi {
				n++
			}
		}
		return n
	}
	for _, u := range []uint64{1, 5, 20, 28} {
		lo, hi := uint32(0), uint32(20)
		if u > 15 {
			lo, hi = 20, 40
		}
		ri, err := ik.RecommendTopN(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		ru, err := uk.RecommendTopN(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if inBlock(ri, lo, hi) < 4 {
			t.Fatalf("item-kNN left block for user %d: %v", u, ri)
		}
		if inBlock(ru, lo, hi) < 4 {
			t.Fatalf("user-kNN left block for user %d: %v", u, ru)
		}
	}
}

func BenchmarkItemKNNBuild(b *testing.B) {
	r := rng.New(1)
	m := NewInteractions(984)
	z := rng.NewZipf(984, 1.05)
	for u := uint64(1); u <= 1000; u++ {
		for i := 0; i < 25; i++ {
			m.Add(u, uint32(z.Draw(r)), 1)
		}
	}
	m.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewItemKNN(m, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkItemKNNRecommend(b *testing.B) {
	r := rng.New(1)
	m := NewInteractions(984)
	z := rng.NewZipf(984, 1.05)
	for u := uint64(1); u <= 1000; u++ {
		for i := 0; i < 25; i++ {
			m.Add(u, uint32(z.Draw(r)), 1)
		}
	}
	m.Freeze()
	ik, err := NewItemKNN(m, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ik.RecommendTopN(uint64(i%1000+1), 10); err != nil {
			b.Fatal(err)
		}
	}
}
