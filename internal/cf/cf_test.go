package cf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func buildMatrix(t *testing.T) *Interactions {
	t.Helper()
	m := NewInteractions(100)
	// Users 1,2 share actions (similar); user 3 is disjoint.
	add := func(u uint64, a uint32, w float64) {
		t.Helper()
		if err := m.Add(u, a, w); err != nil {
			t.Fatal(err)
		}
	}
	add(1, 10, 1)
	add(1, 11, 2)
	add(1, 12, 1)
	add(2, 10, 1)
	add(2, 11, 1)
	add(2, 20, 1)
	add(3, 50, 3)
	add(3, 51, 1)
	m.Freeze()
	return m
}

func TestAddValidation(t *testing.T) {
	m := NewInteractions(10)
	if err := m.Add(0, 1, 1); err == nil {
		t.Fatal("zero user accepted")
	}
	if err := m.Add(1, 10, 1); err == nil {
		t.Fatal("out-of-universe action accepted")
	}
	if err := m.Add(1, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := m.Add(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	m.Freeze()
	if err := m.Add(1, 2, 1); err != ErrFrozen {
		t.Fatalf("add after freeze: %v", err)
	}
}

func TestFreezeIdempotentAndCounts(t *testing.T) {
	m := buildMatrix(t)
	m.Freeze() // second freeze is a no-op
	if m.Users() != 3 {
		t.Fatalf("users %d", m.Users())
	}
	if m.Actions() != 100 {
		t.Fatalf("actions %d", m.Actions())
	}
	if m.NNZ() != 8 {
		t.Fatalf("nnz %d", m.NNZ())
	}
	ids := m.UserIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("user ids %v", ids)
	}
}

func TestRowAccumulatesWeight(t *testing.T) {
	m := NewInteractions(10)
	m.Add(1, 5, 1)
	m.Add(1, 5, 2.5)
	m.Freeze()
	actions, weights, ok := m.Row(1)
	if !ok || len(actions) != 1 || weights[0] != 3.5 {
		t.Fatalf("row: %v %v %v", actions, weights, ok)
	}
	if _, _, ok := m.Row(9); ok {
		t.Fatal("missing user has row")
	}
}

func TestCosine(t *testing.T) {
	m := buildMatrix(t)
	s12, err := m.Cosine(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s12 <= 0 || s12 > 1 {
		t.Fatalf("cosine(1,2)=%v", s12)
	}
	s13, _ := m.Cosine(1, 3)
	if s13 != 0 {
		t.Fatalf("disjoint users cosine %v", s13)
	}
	// Self-similarity is 1.
	s11, _ := m.Cosine(1, 1)
	if math.Abs(s11-1) > 1e-12 {
		t.Fatalf("self cosine %v", s11)
	}
	// Unknown users: similarity 0, no error.
	if s, err := m.Cosine(1, 999); err != nil || s != 0 {
		t.Fatalf("unknown user: %v %v", s, err)
	}
}

func TestJaccard(t *testing.T) {
	m := buildMatrix(t)
	// Users 1 {10,11,12}, 2 {10,11,20}: intersection 2, union 4.
	j, err := m.Jaccard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.5) > 1e-12 {
		t.Fatalf("jaccard %v want 0.5", j)
	}
	j13, _ := m.Jaccard(1, 3)
	if j13 != 0 {
		t.Fatalf("disjoint jaccard %v", j13)
	}
}

func TestQueriesBeforeFreeze(t *testing.T) {
	m := NewInteractions(5)
	m.Add(1, 1, 1)
	if _, err := m.Cosine(1, 1); err != ErrNotFrozen {
		t.Fatalf("cosine before freeze: %v", err)
	}
	if _, err := NewKNN(m, 3); err != ErrNotFrozen {
		t.Fatalf("knn before freeze: %v", err)
	}
	if _, err := TrainMF(m, DefaultMF()); err != ErrNotFrozen {
		t.Fatalf("mf before freeze: %v", err)
	}
}

func TestPopularity(t *testing.T) {
	m := buildMatrix(t)
	// Action 11 has weight 3 of total 11.
	if p := m.Popularity(11); math.Abs(p-3.0/11.0) > 1e-12 {
		t.Fatalf("popularity(11)=%v", p)
	}
	if m.Popularity(99) != 0 {
		t.Fatal("untouched action has popularity")
	}
	top := m.TopPopular(2)
	if len(top) != 2 || top[0] != 11 || top[1] != 50 {
		t.Fatalf("top popular %v", top)
	}
}

func TestKNNNeighbors(t *testing.T) {
	m := buildMatrix(t)
	knn, err := NewKNN(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	neigh, err := knn.Neighbors(1)
	if err != nil {
		t.Fatal(err)
	}
	// Only user 2 overlaps with user 1.
	if len(neigh) != 1 || neigh[0].UserID != 2 {
		t.Fatalf("neighbors %v", neigh)
	}
	// Unknown user: nil, no error.
	n2, err := knn.Neighbors(999)
	if err != nil || n2 != nil {
		t.Fatalf("unknown user neighbors: %v %v", n2, err)
	}
}

func TestKNNScoreAction(t *testing.T) {
	m := buildMatrix(t)
	knn, _ := NewKNN(m, 5)
	// User 1's neighbor (2) did action 20; score must be positive.
	s, err := knn.ScoreAction(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("score for neighbor action %v", s)
	}
	// Action nobody did scores 0.
	s, _ = knn.ScoreAction(1, 77)
	if s != 0 {
		t.Fatalf("unseen-by-all action scores %v", s)
	}
}

func TestKNNRecommendTopN(t *testing.T) {
	m := buildMatrix(t)
	knn, _ := NewKNN(m, 5)
	recs, err := knn.RecommendTopN(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	// Must exclude user 1's own actions.
	for _, r := range recs {
		if r.Action == 10 || r.Action == 11 || r.Action == 12 {
			t.Fatalf("recommended already-seen action %d", r.Action)
		}
	}
	// Best recommendation should be 20 (only neighbor action unseen).
	if recs[0].Action != 20 {
		t.Fatalf("top rec %v", recs[0])
	}
	if _, err := knn.RecommendTopN(1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestKNNColdStartFallsBackToPopularity(t *testing.T) {
	m := buildMatrix(t)
	knn, _ := NewKNN(m, 5)
	recs, err := knn.RecommendTopN(999, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Action != 11 {
		t.Fatalf("cold-start recs %v", recs)
	}
}

func TestKNNParamValidation(t *testing.T) {
	m := buildMatrix(t)
	if _, err := NewKNN(m, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMFLearnsStructure(t *testing.T) {
	// Two user blocks with disjoint action sets; MF must score within-block
	// actions higher than cross-block ones.
	r := rng.New(5)
	m := NewInteractions(40)
	for u := uint64(1); u <= 20; u++ {
		base := 0
		if u > 10 {
			base = 20
		}
		for i := 0; i < 8; i++ {
			a := uint32(base + r.Intn(20))
			m.Add(u, a, 1)
		}
	}
	m.Freeze()
	mf, err := TrainMF(m, DefaultMF())
	if err != nil {
		t.Fatal(err)
	}
	var within, across float64
	n := 0
	for u := uint64(1); u <= 10; u++ {
		for a := uint32(0); a < 20; a++ {
			within += mf.Score(u, a)
			across += mf.Score(u, a+20)
			n++
		}
	}
	if within/float64(n) <= across/float64(n) {
		t.Fatalf("MF block structure not learned: within %v across %v", within/float64(n), across/float64(n))
	}
}

func TestMFRecommendTopN(t *testing.T) {
	m := buildMatrix(t)
	mf, err := TrainMF(m, MFParams{Factors: 4, Epochs: 10, LearnRate: 0.05, Reg: 0.01, NegPerPos: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := mf.RecommendTopN(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("%d recs", len(recs))
	}
	for _, r := range recs {
		if r.Action == 10 || r.Action == 11 || r.Action == 12 {
			t.Fatalf("MF recommended seen action %d", r.Action)
		}
	}
	// Cold start.
	cold, err := mf.RecommendTopN(999, 2)
	if err != nil || len(cold) != 2 {
		t.Fatalf("cold start: %v %v", cold, err)
	}
	if _, err := mf.RecommendTopN(1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestMFParamValidation(t *testing.T) {
	m := buildMatrix(t)
	bad := []MFParams{
		{Factors: 0, Epochs: 1, LearnRate: 0.1},
		{Factors: 2, Epochs: 0, LearnRate: 0.1},
		{Factors: 2, Epochs: 1, LearnRate: 0},
		{Factors: 2, Epochs: 1, LearnRate: 0.1, Reg: -1},
	}
	for i, p := range bad {
		if _, err := TrainMF(m, p); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

// Property: cosine similarity is symmetric and within [0, 1] for
// non-negative weights.
func TestCosineSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewInteractions(30)
		for u := uint64(1); u <= 8; u++ {
			k := 1 + r.Intn(6)
			for i := 0; i < k; i++ {
				m.Add(u, uint32(r.Intn(30)), 1+r.Float64())
			}
		}
		m.Freeze()
		for a := uint64(1); a <= 8; a++ {
			for b := a + 1; b <= 8; b++ {
				sab, err1 := m.Cosine(a, b)
				sba, err2 := m.Cosine(b, a)
				if err1 != nil || err2 != nil {
					return false
				}
				if math.Abs(sab-sba) > 1e-12 || sab < 0 || sab > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKNNRecommend(b *testing.B) {
	r := rng.New(1)
	m := NewInteractions(984)
	z := rng.NewZipf(984, 1.05)
	for u := uint64(1); u <= 500; u++ {
		for i := 0; i < 30; i++ {
			m.Add(u, uint32(z.Draw(r)), 1)
		}
	}
	m.Freeze()
	knn, err := NewKNN(m, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knn.RecommendTopN(uint64(i%500+1), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMFScore(b *testing.B) {
	r := rng.New(1)
	m := NewInteractions(984)
	for u := uint64(1); u <= 200; u++ {
		for i := 0; i < 20; i++ {
			m.Add(u, uint32(r.Intn(984)), 1)
		}
	}
	m.Freeze()
	mf, err := TrainMF(m, MFParams{Factors: 8, Epochs: 3, LearnRate: 0.05, Reg: 0.01, NegPerPos: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mf.Score(uint64(i%200+1), uint32(i%984))
	}
}
