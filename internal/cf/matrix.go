// Package cf provides the collaborative-filtering substrate behind SPA's
// recommendation function: the sparse user–action interaction matrix over
// the 984-action universe, neighborhood models (user-kNN with cosine or
// Jaccard similarity), a popularity model, and a matrix-factorization
// variant trained with SGD. The paper's recommendation function sends each
// user "the action with most probabilities of execution" (§5.4); these
// models produce that per-user action ranking, with the emotional advice
// vector from internal/sum acting as a re-weighting layer in internal/core.
package cf

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Interactions is a sparse user × action count matrix in CSR-like form,
// built incrementally then frozen for queries.
type Interactions struct {
	nActions int
	rows     map[uint64]map[uint32]float64
	frozen   bool

	// Frozen representation.
	userIDs  []uint64
	userIdx  map[uint64]int
	rowPtr   []int
	colIdx   []uint32
	val      []float64
	rowNorm  []float64
	actPop   []float64 // per-action total weight (popularity)
	totalPop float64
}

// NewInteractions creates an empty matrix over a fixed action universe.
func NewInteractions(nActions int) *Interactions {
	if nActions <= 0 {
		panic("cf: non-positive action universe")
	}
	return &Interactions{
		nActions: nActions,
		rows:     make(map[uint64]map[uint32]float64),
	}
}

// ErrFrozen is returned by Add after Freeze.
var ErrFrozen = errors.New("cf: matrix frozen")

// ErrNotFrozen is returned by query methods before Freeze.
var ErrNotFrozen = errors.New("cf: matrix not frozen yet")

// Add accumulates weight for (user, action). Typical weights: 1 per click,
// larger for transactions.
func (m *Interactions) Add(user uint64, action uint32, weight float64) error {
	if m.frozen {
		return ErrFrozen
	}
	if user == 0 {
		return errors.New("cf: zero user id")
	}
	if int(action) >= m.nActions {
		return fmt.Errorf("cf: action %d outside universe %d", action, m.nActions)
	}
	if weight <= 0 {
		return errors.New("cf: non-positive weight")
	}
	row := m.rows[user]
	if row == nil {
		row = make(map[uint32]float64)
		m.rows[user] = row
	}
	row[action] += weight
	return nil
}

// Freeze converts to the compact query representation. Idempotent.
func (m *Interactions) Freeze() {
	if m.frozen {
		return
	}
	m.userIDs = make([]uint64, 0, len(m.rows))
	for id := range m.rows {
		m.userIDs = append(m.userIDs, id)
	}
	sort.Slice(m.userIDs, func(i, j int) bool { return m.userIDs[i] < m.userIDs[j] })
	m.userIdx = make(map[uint64]int, len(m.userIDs))
	m.rowPtr = make([]int, len(m.userIDs)+1)
	m.actPop = make([]float64, m.nActions)
	for i, id := range m.userIDs {
		m.userIdx[id] = i
		row := m.rows[id]
		actions := make([]uint32, 0, len(row))
		for a := range row {
			actions = append(actions, a)
		}
		sort.Slice(actions, func(x, y int) bool { return actions[x] < actions[y] })
		var norm float64
		for _, a := range actions {
			w := row[a]
			m.colIdx = append(m.colIdx, a)
			m.val = append(m.val, w)
			norm += w * w
			m.actPop[a] += w
			m.totalPop += w
		}
		m.rowPtr[i+1] = len(m.colIdx)
		m.rowNorm = append(m.rowNorm, math.Sqrt(norm))
	}
	m.rows = nil
	m.frozen = true
}

// Users returns the number of users with interactions (frozen only).
func (m *Interactions) Users() int { return len(m.userIDs) }

// Actions returns the action universe size.
func (m *Interactions) Actions() int { return m.nActions }

// NNZ returns the number of stored entries (frozen only).
func (m *Interactions) NNZ() int { return len(m.val) }

// Row returns the (actions, weights) slices of a user's row; ok=false when
// the user has no interactions.
func (m *Interactions) Row(user uint64) (actions []uint32, weights []float64, ok bool) {
	if !m.frozen {
		return nil, nil, false
	}
	i, exists := m.userIdx[user]
	if !exists {
		return nil, nil, false
	}
	start, end := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[start:end], m.val[start:end], true
}

// Popularity returns the normalized popularity of an action in [0,1].
func (m *Interactions) Popularity(action uint32) float64 {
	if !m.frozen || int(action) >= m.nActions || m.totalPop == 0 {
		return 0
	}
	return m.actPop[action] / m.totalPop
}

// TopPopular returns the k most popular actions, descending; ties break by
// ascending action id.
func (m *Interactions) TopPopular(k int) []uint32 {
	if !m.frozen {
		return nil
	}
	type aw struct {
		a uint32
		w float64
	}
	all := make([]aw, 0, m.nActions)
	for a, w := range m.actPop {
		if w > 0 {
			all = append(all, aw{uint32(a), w})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].a < all[j].a
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].a
	}
	return out
}

// Cosine computes the cosine similarity between two users' rows.
func (m *Interactions) Cosine(a, b uint64) (float64, error) {
	if !m.frozen {
		return 0, ErrNotFrozen
	}
	ia, oka := m.userIdx[a]
	ib, okb := m.userIdx[b]
	if !oka || !okb {
		return 0, nil
	}
	dotv := m.rowDot(ia, ib)
	na, nb := m.rowNorm[ia], m.rowNorm[ib]
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dotv / (na * nb), nil
}

// Jaccard computes the Jaccard similarity of the two users' action sets.
func (m *Interactions) Jaccard(a, b uint64) (float64, error) {
	if !m.frozen {
		return 0, ErrNotFrozen
	}
	ia, oka := m.userIdx[a]
	ib, okb := m.userIdx[b]
	if !oka || !okb {
		return 0, nil
	}
	sa, ea := m.rowPtr[ia], m.rowPtr[ia+1]
	sb, eb := m.rowPtr[ib], m.rowPtr[ib+1]
	inter := 0
	i, j := sa, sb
	for i < ea && j < eb {
		switch {
		case m.colIdx[i] == m.colIdx[j]:
			inter++
			i++
			j++
		case m.colIdx[i] < m.colIdx[j]:
			i++
		default:
			j++
		}
	}
	union := (ea - sa) + (eb - sb) - inter
	if union == 0 {
		return 0, nil
	}
	return float64(inter) / float64(union), nil
}

func (m *Interactions) rowDot(ia, ib int) float64 {
	sa, ea := m.rowPtr[ia], m.rowPtr[ia+1]
	sb, eb := m.rowPtr[ib], m.rowPtr[ib+1]
	var s float64
	i, j := sa, sb
	for i < ea && j < eb {
		switch {
		case m.colIdx[i] == m.colIdx[j]:
			s += m.val[i] * m.val[j]
			i++
			j++
		case m.colIdx[i] < m.colIdx[j]:
			i++
		default:
			j++
		}
	}
	return s
}

// UserIDs returns all user ids in ascending order (frozen only).
func (m *Interactions) UserIDs() []uint64 {
	return append([]uint64(nil), m.userIDs...)
}
