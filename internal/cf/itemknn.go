package cf

import (
	"errors"
	"math"
	"sort"
)

// Item-based kNN: the complementary neighborhood model (Sarwar et al. 2001,
// the dominant production CF of the paper's era). Item–item cosine
// similarities are precomputed once over the frozen matrix; per-user
// recommendation then scores candidates from the similarity lists of the
// user's own actions, which is much cheaper per query than user-kNN when
// users outnumber actions — exactly the deployment's regime (3.1 M users,
// 984 actions).
type ItemKNN struct {
	m *Interactions
	k int
	// sims[a] holds the top-k similar actions of a, descending.
	sims [][]itemSim
}

type itemSim struct {
	action uint32
	sim    float64
}

// NewItemKNN precomputes the item–item model with neighborhood size k.
func NewItemKNN(m *Interactions, k int) (*ItemKNN, error) {
	if !m.frozen {
		return nil, ErrNotFrozen
	}
	if k < 1 {
		return nil, errors.New("cf: k must be >= 1")
	}
	ik := &ItemKNN{m: m, k: k, sims: make([][]itemSim, m.nActions)}

	// Column norms in one pass over the row-major storage.
	norms := make([]float64, m.nActions)
	for ui := range m.userIDs {
		start, end := m.rowPtr[ui], m.rowPtr[ui+1]
		for i := start; i < end; i++ {
			w := m.val[i]
			norms[m.colIdx[i]] += w * w
		}
	}
	for a := range norms {
		norms[a] = math.Sqrt(norms[a])
	}
	// Sparse dot products: accumulate co-occurrences by walking user rows.
	dots := make(map[uint64]float64) // key = a<<32|b with a<b
	for ui := range m.userIDs {
		start, end := m.rowPtr[ui], m.rowPtr[ui+1]
		for i := start; i < end; i++ {
			for j := i + 1; j < end; j++ {
				a, b := m.colIdx[i], m.colIdx[j]
				dots[uint64(a)<<32|uint64(b)] += m.val[i] * m.val[j]
			}
		}
	}
	neighbors := make([][]itemSim, m.nActions)
	for key, dot := range dots {
		a := uint32(key >> 32)
		b := uint32(key)
		if norms[a] == 0 || norms[b] == 0 {
			continue
		}
		s := dot / (norms[a] * norms[b])
		neighbors[a] = append(neighbors[a], itemSim{b, s})
		neighbors[b] = append(neighbors[b], itemSim{a, s})
	}
	for a := range neighbors {
		ns := neighbors[a]
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].sim != ns[j].sim {
				return ns[i].sim > ns[j].sim
			}
			return ns[i].action < ns[j].action
		})
		if len(ns) > k {
			ns = ns[:k]
		}
		ik.sims[a] = ns
	}
	return ik, nil
}

// Similar returns the precomputed top similar actions of a.
func (ik *ItemKNN) Similar(action uint32) []Recommendation {
	if int(action) >= len(ik.sims) {
		return nil
	}
	out := make([]Recommendation, len(ik.sims[action]))
	for i, s := range ik.sims[action] {
		out[i] = Recommendation{Action: s.action, Score: s.sim}
	}
	return out
}

// RecommendTopN scores unseen actions by similarity-weighted aggregation
// over the user's history; cold-start users fall back to popularity.
func (ik *ItemKNN) RecommendTopN(user uint64, n int) ([]Recommendation, error) {
	if n < 1 {
		return nil, errors.New("cf: n must be >= 1")
	}
	actions, weights, ok := ik.m.Row(user)
	if !ok {
		var out []Recommendation
		for _, a := range ik.m.TopPopular(n) {
			out = append(out, Recommendation{Action: a, Score: ik.m.Popularity(a)})
		}
		return out, nil
	}
	seen := map[uint32]bool{}
	for _, a := range actions {
		seen[a] = true
	}
	scores := map[uint32]float64{}
	for i, a := range actions {
		for _, nb := range ik.sims[a] {
			if seen[nb.action] {
				continue
			}
			scores[nb.action] += nb.sim * weights[i]
		}
	}
	out := make([]Recommendation, 0, len(scores))
	for a, s := range scores {
		out = append(out, Recommendation{Action: a, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Action < out[j].Action
	})
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}
