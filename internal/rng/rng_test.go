package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling children produced identical first draw")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(99).Split()
	b := New(99).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split of same-seed parents diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn bucket %d badly skewed: %d/70000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(10, 2)
	}
	if math.Abs(sum/n-10) > 0.05 {
		t.Fatalf("gaussian(10,2) mean %v", sum/n)
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(2)
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
		sum += x
	}
	if math.Abs(sum/n-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", sum/n)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(23)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x < 0 {
				t.Fatalf("negative gamma draw")
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean %v", shape, mean)
		}
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	r := New(29)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of range: %v", x)
		}
		sum += x
	}
	want := 2.0 / 7.0
	if math.Abs(sum/n-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean %v, want ~%v", sum/n, want)
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		v := r.Dirichlet([]float64{1, 2, 3, 0.5})
		var sum float64
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative dirichlet component")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dirichlet sum %v", sum)
		}
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := New(37)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestCategoricalAllZeroUniform(t *testing.T) {
	r := New(41)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("all-zero-weight bucket %d skewed: %d", i, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation")
		}
		seen[v] = true
	}
}

func TestSampleIntsProperties(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw) % (n + 1)
		r := New(seed)
		s := r.SampleInts(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsPanicsWhenKExceedsN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInts(2,3) did not panic")
		}
	}()
	New(1).SampleInts(2, 3)
}

func TestZipfSkew(t *testing.T) {
	r := New(47)
	z := NewZipf(100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("zipf not monotone-ish: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
	if counts[0] < 10000 {
		t.Fatalf("rank 0 share too small for s=1.1: %d", counts[0])
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	z := NewZipf(50, 0.8)
	var sum float64
	for i := 0; i < 50; i++ {
		sum += z.PMF(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("zipf pmf sum %v", sum)
	}
	if z.PMF(-1) != 0 || z.PMF(50) != 0 {
		t.Fatal("out-of-range PMF must be 0")
	}
}

func TestZipfDrawInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		z := NewZipf(10, 1.0)
		for i := 0; i < 100; i++ {
			d := z.Draw(r)
			if d < 0 || d >= 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(53)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / 100000
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(984, 1.05)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Draw(r)
	}
	_ = sink
}
