package rng

import "math"

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, the classic web-access popularity law. The synthetic WebLog
// generator uses it to skew action popularity the way real click-streams are
// skewed (a handful of landing and search actions dominate; the long tail of
// the 984-action universe is rarely touched).
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf(s) law over n ranks. s must be > 0
// and n >= 1.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("rng: NewZipf with n < 1")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{n: n, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Draw returns a rank in [0, n) using binary search over the CDF.
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PMF returns the probability mass of the given rank.
func (z *Zipf) PMF(rank int) float64 {
	if rank < 0 || rank >= z.n {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
