// Package rng provides deterministic pseudo-random utilities used across the
// SPA reproduction: a splitmix64-seeded xoshiro-style generator plus the
// distribution samplers the synthetic population generator needs (gaussian,
// zipf, categorical, dirichlet, bernoulli) and order utilities (shuffle,
// sample without replacement).
//
// Every experiment in this repository is seeded, so identical seeds reproduce
// identical populations, campaigns and metrics bit-for-bit. The generator is
// intentionally not safe for concurrent use; callers that fan out work derive
// independent child generators with Split, which uses splitmix64 stream
// separation so children are statistically independent of the parent and of
// each other.
package rng

import "math"

// RNG is a small, fast, deterministic generator (xorshift128+ core seeded via
// splitmix64). It is not cryptographically secure and not concurrency-safe.
type RNG struct {
	s0, s1 uint64
	// spare holds a cached second gaussian from the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from the given seed. Any seed (including 0)
// is valid: splitmix64 expands it into a full non-zero state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator. The child's stream is
// decorrelated from the parent by hashing the parent's next output through
// splitmix64 twice; the parent advances by one step.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	sm := seed ^ 0xbf58476d1ce4e5b9
	c := &RNG{}
	c.s0 = splitmix64(&sm)
	c.s1 = splitmix64(&sm)
	if c.s0 == 0 && c.s1 == 0 {
		c.s1 = 0x94d049bb133111eb
	}
	return c
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster but a
	// simple modulo of a 64-bit draw keeps bias below 2^-32 for any n that
	// fits an int on 64-bit platforms, which is fine for simulation.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via Box-Muller with caching.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Exp returns an exponential variate with the given rate lambda (> 0).
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive lambda")
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / lambda
}

// Beta samples a Beta(a, b) variate using Jöhnk's algorithm for small shapes
// and the gamma-ratio method otherwise.
func (r *RNG) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("rng: Beta with non-positive shape")
	}
	ga := r.Gamma(a)
	gb := r.Gamma(b)
	if ga+gb == 0 {
		return 0.5
	}
	return ga / (ga + gb)
}

// Gamma samples a Gamma(shape, 1) variate using Marsaglia & Tsang's method.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost to shape+1 and scale back.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet samples a probability vector from Dirichlet(alpha...). The result
// sums to 1 (up to float error) and has len(alpha) entries.
func (r *RNG) Dirichlet(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	var sum float64
	for i, a := range alpha {
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Categorical draws an index with probability proportional to weights[i].
// Zero or negative weights contribute nothing; if all weights are
// non-positive the draw is uniform.
func (r *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleInts returns k distinct uniform indices from [0, n) in random order.
// It panics if k > n. For k close to n it shuffles; for sparse samples it
// uses Floyd's algorithm, which needs O(k) memory.
func (r *RNG) SampleInts(n, k int) []int {
	if k > n {
		panic("rng: SampleInts k > n")
	}
	if k <= 0 {
		return nil
	}
	if k*3 >= n {
		p := r.Perm(n)
		return p[:k]
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
