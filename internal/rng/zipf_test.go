package rng

import (
	"math"
	"testing"
)

// TestZipfPMFMatchesAnalytic pins the distribution itself: the PMF must be
// exactly the normalized power law 1/(rank+1)^s, sum to one, and decrease
// monotonically. A CDF construction bug (off-by-one in normalization, a
// dropped rank) would surface here before any sampling noise could mask it.
func TestZipfPMFMatchesAnalytic(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{10, 1.07}, {512, 1.07}, {984, 1.05}, {100, 2.0}, {1, 1.0}} {
		z := NewZipf(tc.n, tc.s)
		var norm float64
		for i := 0; i < tc.n; i++ {
			norm += 1 / math.Pow(float64(i+1), tc.s)
		}
		var total float64
		prev := math.Inf(1)
		for r := 0; r < tc.n; r++ {
			want := 1 / math.Pow(float64(r+1), tc.s) / norm
			got := z.PMF(r)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d s=%v rank %d: PMF %g, analytic %g", tc.n, tc.s, r, got, want)
			}
			if got > prev+1e-15 {
				t.Fatalf("n=%d s=%v: PMF not monotone at rank %d", tc.n, tc.s, r)
			}
			prev = got
			total += got
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("n=%d s=%v: PMF sums to %g", tc.n, tc.s, total)
		}
		if z.PMF(-1) != 0 || z.PMF(tc.n) != 0 {
			t.Fatalf("n=%d s=%v: out-of-range PMF not zero", tc.n, tc.s)
		}
	}
}

// TestZipfTopMassPinned pins the skew the scenario loadgen depends on: at
// s=1.07 over 512 ranks (the [S6] population), the top 1% of ranks must own
// the analytic share of the mass — a heavy-tailed ~27%, not a uniform 1%.
// The test compares the CDF (exact) and a 200k-draw sample (statistical)
// against the same analytic figure, so a biased Draw cannot hide behind a
// correct table or vice versa.
func TestZipfTopMassPinned(t *testing.T) {
	const (
		n = 512
		s = 1.07
	)
	top := n / 100 // top 1% = 5 ranks
	var num, den float64
	for i := 0; i < n; i++ {
		m := 1 / math.Pow(float64(i+1), s)
		den += m
		if i < top {
			num += m
		}
	}
	analytic := num / den
	if analytic < 0.2 || analytic > 0.4 {
		t.Fatalf("analytic top-1%% mass %g outside the expected heavy-tail band", analytic)
	}

	z := NewZipf(n, s)
	if exact := z.cdf[top-1]; math.Abs(exact-analytic) > 1e-12 {
		t.Fatalf("CDF top-1%% mass %g, analytic %g", exact, analytic)
	}

	const draws = 200_000
	r := New(1234)
	hits := 0
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Draw(r)
		counts[k]++
		if k < top {
			hits++
		}
	}
	got := float64(hits) / draws
	// 3-sigma band for a Bernoulli(analytic) sum over 200k draws: ~0.3%.
	tol := 3 * math.Sqrt(analytic*(1-analytic)/draws)
	if math.Abs(got-analytic) > tol {
		t.Fatalf("sampled top-1%% mass %.4f, analytic %.4f (tol %.4f)", got, analytic, tol)
	}

	// Per-rank agreement for the head, where counts are large enough for a
	// tight relative bound: each of the top ranks within 5% of expectation.
	for k := 0; k < top; k++ {
		want := z.PMF(k) * draws
		if math.Abs(float64(counts[k])-want) > 0.05*want {
			t.Fatalf("rank %d drawn %d times, expected %.0f", k, counts[k], want)
		}
	}
	// And every rank must be reachable in principle: the CDF is strictly
	// increasing, so no rank is shadowed by its neighbor.
	for k := 1; k < n; k++ {
		if !(z.cdf[k] > z.cdf[k-1]) {
			t.Fatalf("CDF not strictly increasing at rank %d", k)
		}
	}
}
