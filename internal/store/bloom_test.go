package store

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// TestBloomNoFalseNegatives is the filter's hard contract: every added key
// answers positive, across a randomized keyspace and filter sizes.
func TestBloomNoFalseNegatives(t *testing.T) {
	rnd := uint64(0x9d2c5680deadbeef)
	next := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	for _, n := range []int{0, 1, 7, 100, 5000} {
		f := newBloomFilter(n, bloomBitsPerKey)
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = binary.BigEndian.AppendUint64(nil, next())
			f.add(keys[i])
		}
		for i, k := range keys {
			if !f.mayContain(k) {
				t.Fatalf("n=%d: false negative on key %d", n, i)
			}
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 10000
	f := newBloomFilter(n, bloomBitsPerKey)
	for i := 0; i < n; i++ {
		f.add([]byte(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.mayContain([]byte(fmt.Sprintf("outsider-%d", i))) {
			fp++
		}
	}
	// 10 bits/key targets ~1 %; allow generous slack against hash quirks.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	f := newBloomFilter(50, bloomBitsPerKey)
	for i := 0; i < 50; i++ {
		f.add([]byte(fmt.Sprintf("k%d", i)))
	}
	g, err := unmarshalBloom(f.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.k != f.k || len(g.bits) != len(f.bits) {
		t.Fatalf("shape changed: k %d->%d bits %d->%d", f.k, g.k, len(f.bits), len(g.bits))
	}
	for i := 0; i < 50; i++ {
		if !g.mayContain([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("false negative after round trip: k%d", i)
		}
	}
	if _, err := unmarshalBloom([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated bloom accepted")
	}
}

func TestBloomEmptyFilterRejectsAll(t *testing.T) {
	f := newBloomFilter(0, bloomBitsPerKey)
	if f.mayContain([]byte("anything")) {
		t.Fatal("empty filter claimed membership")
	}
	var nilFilter *bloomFilter
	if nilFilter.mayContain([]byte("anything")) {
		t.Fatal("nil filter claimed membership")
	}
}
