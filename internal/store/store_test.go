package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

func TestPutGet(t *testing.T) {
	db, _ := openTemp(t, Options{})
	if err := db.Put([]byte("user:1"), []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("user:1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "alice" {
		t.Fatalf("got %q", v)
	}
}

func TestGetMissing(t *testing.T) {
	db, _ := openTemp(t, Options{})
	if _, err := db.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db, _ := openTemp(t, Options{})
	if err := db.Put(nil, []byte("x")); err == nil {
		t.Fatal("empty key accepted by Put")
	}
	if err := db.Delete(nil); err == nil {
		t.Fatal("empty key accepted by Delete")
	}
}

func TestOverwrite(t *testing.T) {
	db, _ := openTemp(t, Options{})
	for i := 0; i < 5; i++ {
		if err := db.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v4" {
		t.Fatalf("got %q, want v4", v)
	}
}

func TestDelete(t *testing.T) {
	db, _ := openTemp(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key still readable: %v", err)
	}
	// Deleting a missing key is fine.
	if err := db.Delete([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteShadowsSegment(t *testing.T) {
	db, _ := openTemp(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone did not shadow segment value")
	}
	// Even after the tombstone itself is flushed.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatal("flushed tombstone did not shadow segment value")
	}
}

func TestFlushAndReadBack(t *testing.T) {
	db, _ := openTemp(t, Options{})
	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("val-%04d", i))
		if err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.SegmentCount() == 0 {
		t.Fatal("flush created no segment")
	}
	for i := 0; i < n; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		want := fmt.Sprintf("val-%04d", i)
		if string(v) != want {
			t.Fatalf("key %d: got %q want %q", i, v, want)
		}
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Delete([]byte("a"))
	db.Sync()
	// Simulate a crash: close without Flush by reopening over the same dir.
	// (Close flushes, so instead abandon the handle after syncing the WAL.)
	db.wal.f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected after recovery")
	}
	v, err := db2.Get([]byte("b"))
	if err != nil || string(v) != "2" {
		t.Fatalf("recovered value %q err %v", v, err)
	}
}

func TestRecoveryTruncatedWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Sync()
	db.wal.f.Close()

	// Corrupt the tail: chop a few bytes off the last record.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// First record must survive; the torn one is discarded.
	v, err := db2.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("intact record lost: %q %v", v, err)
	}
	if _, err := db2.Get([]byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatal("torn record partially applied")
	}
}

func TestReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n, err := db2.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("reopened Len=%d, want 100", n)
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	db, _ := openTemp(t, Options{})
	keys := []string{"d", "a", "c", "b", "e"}
	for _, k := range keys {
		db.Put([]byte(k), []byte("v-"+k))
	}
	db.Flush()
	db.Put([]byte("bb"), []byte("v-bb")) // memtable entry interleaved with segment

	var got []string
	err := db.Scan([]byte("b"), []byte("e"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "bb", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("scan got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v want %v", got, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	db, _ := openTemp(t, Options{})
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	count := 0
	db.Scan(nil, nil, func(_, _ []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestScanNewestWins(t *testing.T) {
	db, _ := openTemp(t, Options{})
	db.Put([]byte("k"), []byte("old"))
	db.Flush()
	db.Put([]byte("k"), []byte("mid"))
	db.Flush()
	db.Put([]byte("k"), []byte("new"))

	var vals []string
	db.Scan(nil, nil, func(k, v []byte) bool {
		vals = append(vals, string(v))
		return true
	})
	if len(vals) != 1 || vals[0] != "new" {
		t.Fatalf("scan saw %v, want [new]", vals)
	}
}

func TestCompact(t *testing.T) {
	db, _ := openTemp(t, Options{})
	for round := 0; round < 4; round++ {
		for i := 0; i < 50; i++ {
			db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("r%d", round)))
		}
		db.Flush()
	}
	db.Put([]byte("k00"), []byte("final"))
	db.Delete([]byte("k01"))
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.SegmentCount() != 1 {
		t.Fatalf("after compact: %d segments", db.SegmentCount())
	}
	v, err := db.Get([]byte("k00"))
	if err != nil || string(v) != "final" {
		t.Fatalf("k00=%q err=%v", v, err)
	}
	if _, err := db.Get([]byte("k01")); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstoned key survived compaction")
	}
	v, err = db.Get([]byte("k02"))
	if err != nil || string(v) != "r3" {
		t.Fatalf("k02=%q err=%v, want r3", v, err)
	}
	n, _ := db.Len()
	if n != 49 {
		t.Fatalf("Len after compact = %d, want 49", n)
	}
}

func TestMemtableAutoFlush(t *testing.T) {
	db, _ := openTemp(t, Options{MemtableBytes: 1024})
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte("x"), 64))
	}
	if db.SegmentCount() == 0 {
		t.Fatal("small memtable never flushed")
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatalf("key %d lost across auto-flush: %v", i, err)
		}
	}
}

func TestClosedDBRejectsOps(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed: %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestHas(t *testing.T) {
	db, _ := openTemp(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	ok, err := db.Has([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Has existing: %v %v", ok, err)
	}
	ok, err = db.Has([]byte("absent"))
	if err != nil || ok {
		t.Fatalf("Has missing: %v %v", ok, err)
	}
}

func TestKeys(t *testing.T) {
	db, _ := openTemp(t, Options{})
	for _, k := range []string{"c", "a", "b"} {
		db.Put([]byte(k), []byte("v"))
	}
	keys, err := db.Keys(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || string(keys[0]) != "a" || string(keys[2]) != "c" {
		t.Fatalf("Keys = %q", keys)
	}
}

// Property: a DB behaves like a map under an arbitrary sequence of
// put/delete/flush operations.
func TestPropertyMatchesMap(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint16
	}
	f := func(ops []op) bool {
		dir, err := os.MkdirTemp("", "storeprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		db, err := Open(dir, Options{MemtableBytes: 512})
		if err != nil {
			return false
		}
		defer db.Close()
		model := map[string]string{}
		for _, o := range ops {
			key := fmt.Sprintf("k%02d", o.Key%32)
			val := fmt.Sprintf("v%05d", o.Value)
			switch o.Kind % 4 {
			case 0, 1:
				if db.Put([]byte(key), []byte(val)) != nil {
					return false
				}
				model[key] = val
			case 2:
				if db.Delete([]byte(key)) != nil {
					return false
				}
				delete(model, key)
			case 3:
				if db.Flush() != nil {
					return false
				}
			}
		}
		// Verify every model key and a few absent ones.
		for k, want := range model {
			v, err := db.Get([]byte(k))
			if err != nil || string(v) != want {
				return false
			}
		}
		n, err := db.Len()
		if err != nil || n != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	db.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.dat"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	raw, _ := os.ReadFile(segs[0])
	raw[len(segMagic)+2] ^= 0xff // flip a byte in the record block
	os.WriteFile(segs[0], raw, 0o644)

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt segment opened without error")
	}
}

func BenchmarkPut(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	key := make([]byte, 16)
	val := bytes.Repeat([]byte("p"), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("user:%010d", i))
		if err := db.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetFromSegment(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("user:%06d", i)), []byte("profile-data"))
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("user:%06d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("user:%06d", i)), []byte("profile"))
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		db.Scan(nil, nil, func(_, _ []byte) bool { count++; return true })
		if count != n {
			b.Fatalf("scan count %d", count)
		}
	}
}
