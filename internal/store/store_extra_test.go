package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentReadersDuringWrites exercises the single-writer /
// multi-reader contract under the race detector.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	db, _ := openTemp(t, Options{MemtableBytes: 4 << 10})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("k%03d", r*10))
				if _, err := db.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("reader: %v", err)
					return
				}
				n := 0
				db.Scan(nil, nil, func(_, _ []byte) bool { n++; return n < 50 })
			}
		}(r)
	}
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i%200)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestLargeValues(t *testing.T) {
	db, _ := openTemp(t, Options{MemtableBytes: 1 << 20})
	big := bytes.Repeat([]byte("x"), 1<<20) // 1 MiB value
	if err := db.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("big"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large value corrupted")
	}
}

func TestEmptyValueAllowed(t *testing.T) {
	db, _ := openTemp(t, Options{})
	if err := db.Put([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("empty value read as %q", v)
	}
	// Survives a flush (distinguishing empty value from tombstone).
	db.Flush()
	if _, err := db.Get([]byte("k")); err != nil {
		t.Fatalf("empty value lost after flush: %v", err)
	}
}

func TestSegmentIndexBoundaries(t *testing.T) {
	// Exactly indexStride and indexStride±1 entries stress the sparse-index
	// seek logic.
	for _, n := range []int{indexStride - 1, indexStride, indexStride + 1, 3 * indexStride} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			db, _ := openTemp(t, Options{})
			for i := 0; i < n; i++ {
				db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i)))
			}
			db.Flush()
			for i := 0; i < n; i++ {
				v, err := db.Get([]byte(fmt.Sprintf("key-%05d", i)))
				if err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("key %d: %q %v", i, v, err)
				}
			}
			// Missing keys around the boundaries.
			if _, err := db.Get([]byte("key-99999")); !errors.Is(err, ErrNotFound) {
				t.Fatal("phantom key after last")
			}
			if _, err := db.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
				t.Fatal("phantom key before first")
			}
		})
	}
}

func TestCompactSingleSegmentNoop(t *testing.T) {
	db, _ := openTemp(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.SegmentCount() != 1 {
		t.Fatalf("segments %d", db.SegmentCount())
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestCompactEmptyDB(t *testing.T) {
	db, _ := openTemp(t, Options{})
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestScanPrefixBounds(t *testing.T) {
	db, _ := openTemp(t, Options{})
	for _, k := range []string{"a/1", "a/2", "b/1", "b/2", "c/1"} {
		db.Put([]byte(k), []byte("v"))
	}
	db.Flush()
	var got []string
	db.Scan([]byte("b/"), []byte("b0"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "b/1" || got[1] != "b/2" {
		t.Fatalf("prefix scan %v", got)
	}
}

func TestSyncDurableWithoutFlush(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("durable"), []byte("yes"))
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close (simulated crash); reopen must replay the WAL.
	db.wal.f.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("durable"))
	if err != nil || string(v) != "yes" {
		t.Fatalf("synced write lost: %q %v", v, err)
	}
}

func TestSyncWritesOption(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	db.wal.f.Close() // crash without Close or explicit Sync
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("k")); err != nil {
		t.Fatalf("SyncWrites write lost: %v", err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	// A foreign file that matches the glob but not the name format.
	os.WriteFile(filepath.Join(dir, "seg-garbage.dat"), []byte("junk"), 0o644)
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("foreign file broke open: %v", err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteEverythingThenCompact(t *testing.T) {
	db, _ := openTemp(t, Options{})
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	db.Flush()
	for i := 0; i < 50; i++ {
		db.Delete([]byte(fmt.Sprintf("k%02d", i)))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	n, err := db.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("%d keys survived total deletion", n)
	}
}

func TestReopenPreservesSegments(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	for round := 0; round < 3; round++ {
		for i := 0; i < 30; i++ {
			db.Put([]byte(fmt.Sprintf("r%d-k%02d", round, i)), []byte("v"))
		}
		db.Flush()
	}
	segs := db.SegmentCount()
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.SegmentCount() != segs {
		t.Fatalf("reopened with %d segments, had %d", db2.SegmentCount(), segs)
	}
	n, _ := db2.Len()
	if n != 90 {
		t.Fatalf("reopened Len %d", n)
	}
}
