package store

import (
	"io"
	"os"
)

// FileOps abstracts the filesystem operations the engine performs on its
// own files: segment flushing/compaction (Create/Rename/Remove) and the
// write-ahead log (OpenWAL). Production uses the os package directly; tests
// substitute a fake that fails specific operations (a create, the Nth
// write, the sync, the rename) to exercise every flush and commit error
// path without touching a real failing disk. The seam is injectable from
// outside the package via Options.FileOps, so higher layers (core's ingest
// path) can drive their own store-failure regression tests.
type FileOps interface {
	Create(name string) (SegFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// OpenWAL opens (creating if absent) the write-ahead log for read,
	// append and truncation.
	OpenWAL(name string) (WALFile, error)
}

// SegFile is the slice of *os.File that segment writing needs.
type SegFile interface {
	io.Writer
	Sync() error
	Close() error
}

// WALFile is the slice of *os.File the write-ahead log needs: sequential
// reads for replay, appends, explicit syncs, and truncation of a corrupt
// tail (or the whole log after a memtable flush).
type WALFile interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// osFileOps is the production implementation.
type osFileOps struct{}

func (osFileOps) Create(name string) (SegFile, error) { return os.Create(name) }
func (osFileOps) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
func (osFileOps) Remove(name string) error { return os.Remove(name) }
func (osFileOps) OpenWAL(name string) (WALFile, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
}
