package store

import (
	"io"
	"os"
)

// fileOps abstracts the handful of filesystem operations segment flushing
// and compaction perform. Production uses the os package directly; tests
// substitute a fake that fails specific operations (a create, the Nth
// write, the sync, the rename) to exercise every flush error path without
// touching a real failing disk.
type fileOps interface {
	Create(name string) (segFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// segFile is the slice of *os.File that segment writing needs.
type segFile interface {
	io.Writer
	Sync() error
	Close() error
}

// osFileOps is the production implementation.
type osFileOps struct{}

func (osFileOps) Create(name string) (segFile, error) { return os.Create(name) }
func (osFileOps) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
func (osFileOps) Remove(name string) error { return os.Remove(name) }
