package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The replicated-log surface (DESIGN.md §9). Every committed record carries
// a durable, monotone log sequence number persisted in the WAL framing
// (wal.go, opBatchLSN), and a memtable flush no longer discards the log: the
// active file is sealed under an LSN-stamped name and retained until the
// history budget evicts it. TailLog streams committed records from that
// history — sealed files, then the in-memory mirror of the active file, then
// live commits — so a follower can replicate the store by replaying exactly
// the bytes the leader's own crash recovery would replay. When a requested
// position has been pruned, ExportSnapshot provides the state handoff and
// SnapshotLSN the position to resume tailing from.

// ErrLogCompacted is returned by TailLog when the requested LSN has been
// pruned from the retained history; the caller must bootstrap from
// ExportSnapshot instead.
var ErrLogCompacted = errors.New("store: log position compacted away")

// ErrTailClosed is returned by LogTail.Next after Close.
var ErrTailClosed = errors.New("store: log tail closed")

// LogEntry is one key operation inside a log record.
type LogEntry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// LogRecord is one committed atomic record of the replicated log: the
// entries of a WriteBatch (or a single Put/Delete), the batch's opaque
// annotation, and the record's durable sequence number.
type LogRecord struct {
	LSN        uint64
	Annotation []byte
	Entries    []LogEntry
}

// logRec is the in-memory mirror of a committed record in the active WAL
// file: the LSN and the exact record payload (decodable, immutable once
// appended). It exists so TailLog never has to read through the buffered
// active file.
type logRec struct {
	lsn     uint64
	payload []byte
}

// sealedLog indexes one retained, immutable WAL file.
type sealedLog struct {
	path  string
	seq   uint64
	first uint64
	last  uint64
	bytes int64
}

func sealedLogPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

// loadSealedLogs indexes the retained WAL files in dir, oldest first.
// Files with no valid records are ignored.
func loadSealedLogs(dir string) (sealed []sealedLog, nextSeq uint64, lastLSN uint64, err error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, 1, 0, err
	}
	for _, p := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%016x.log", &seq); err != nil {
			continue // foreign file; ignore
		}
		recs, err := readSealedRecords(p, 0)
		if err != nil {
			return nil, 1, 0, fmt.Errorf("store: scanning %s: %w", p, err)
		}
		if seq >= nextSeq {
			nextSeq = seq + 1
		}
		if len(recs) == 0 {
			continue
		}
		sl := sealedLog{path: p, seq: seq, first: recs[0].lsn, last: recs[len(recs)-1].lsn}
		for _, r := range recs {
			sl.bytes += int64(8 + len(r.payload))
		}
		sealed = append(sealed, sl)
	}
	sort.Slice(sealed, func(i, j int) bool { return sealed[i].seq < sealed[j].seq })
	if len(sealed) > 0 {
		lastLSN = sealed[len(sealed)-1].last
	}
	if nextSeq == 0 {
		nextSeq = 1
	}
	return sealed, nextSeq, lastLSN, nil
}

// readSealedRecords reads the LSN-stamped records of a sealed WAL file with
// lsn >= fromLSN. Sealed files are synced before they are renamed into
// place, so a corrupt tail is unexpected — but tolerated the same way
// replay tolerates it: the valid prefix is returned.
func readSealedRecords(path string, fromLSN uint64) ([]logRec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var recs []logRec
	var header [8]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return recs, nil
		}
		wantCRC := binary.LittleEndian.Uint32(header[0:4])
		plen := binary.LittleEndian.Uint32(header[4:8])
		if plen == 0 || plen > maxWALRecord {
			return recs, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, nil
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return recs, nil
		}
		rec, err := decodeWALRecord(payload)
		if err != nil || rec.legacy {
			// Legacy records never reach a sealed file (Open normalizes the
			// active log before its first seal); treat as a corrupt tail.
			return recs, nil
		}
		if rec.lsn >= fromLSN {
			recs = append(recs, logRec{lsn: rec.lsn, payload: payload})
		}
	}
}

// AppliedLSN reports the sequence number of the last committed record: the
// position a follower resuming from this store's state should tail from
// (exclusive).
func (db *DB) AppliedLSN() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lastLSN
}

// LogFloor reports the oldest LSN still retained in log history. A TailLog
// from any position >= the floor succeeds; older positions need a snapshot.
func (db *DB) LogFloor() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.logFloorLocked()
}

func (db *DB) logFloorLocked() uint64 {
	if len(db.sealed) > 0 {
		return db.sealed[0].first
	}
	if len(db.activeRecs) > 0 {
		return db.activeRecs[0].lsn
	}
	return db.lastLSN + 1
}

// noteCommitLocked mirrors one freshly committed record into the active-log
// index and wakes tail subscribers. The caller holds db.mu and has made the
// record as durable as the configuration promises (post-sync under
// SyncWrites — so with syncing on, a tailer never ships a record the leader
// would not recover).
func (db *DB) noteCommitLocked(lsn uint64, payload []byte) {
	db.activeRecs = append(db.activeRecs, logRec{lsn: lsn, payload: payload})
	db.lastLSN = lsn
	db.notifyTailLocked()
}

// notifyTailLocked wakes every blocked LogTail; they re-poll under the lock.
func (db *DB) notifyTailLocked() {
	close(db.tailCh)
	db.tailCh = make(chan struct{})
}

// sealWALLocked retires the active WAL file after a memtable flush: instead
// of truncating it (the pre-replication behavior), the file is synced and
// renamed into the retained history, and a fresh active file replaces it.
// The caller holds db.mu.
func (db *DB) sealWALLocked() error {
	if len(db.activeRecs) == 0 {
		// Nothing committed to retain (only possible when every record in
		// the file was unacknowledged): the old truncate-in-place behavior.
		return db.wal.reset()
	}
	if err := db.wal.failed(); err != nil {
		// A sticky write failure means the file may hold in-doubt bytes
		// past the committed records; sealing it would promote them into
		// the shippable history. Reopen resolves them first.
		return err
	}
	if err := db.wal.w.Flush(); err != nil {
		db.wal.err = err
		return err
	}
	if err := db.wal.f.Sync(); err != nil {
		return err
	}
	if err := db.wal.f.Close(); err != nil {
		return err
	}
	seq := db.nextWALSeq
	sp := sealedLogPath(db.dir, seq)
	if err := db.fops.Rename(db.wal.path, sp); err != nil {
		// The active file is still in place; reopen it so writes continue.
		if f, oerr := db.fops.OpenWAL(db.wal.path); oerr == nil {
			if _, serr := f.Seek(0, io.SeekEnd); serr == nil {
				db.wal.f = f
				db.wal.w.Reset(f)
			} else {
				f.Close()
			}
		}
		return fmt.Errorf("store: sealing wal: %w", err)
	}
	db.nextWALSeq++
	sl := sealedLog{path: sp, seq: seq, first: db.activeRecs[0].lsn, last: db.activeRecs[len(db.activeRecs)-1].lsn}
	for _, r := range db.activeRecs {
		sl.bytes += int64(8 + len(r.payload))
	}
	db.sealed = append(db.sealed, sl)
	db.activeRecs = nil
	f, err := db.fops.OpenWAL(db.wal.path)
	if err != nil {
		return fmt.Errorf("store: reopening wal: %w", err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	db.wal.f = f
	db.wal.w.Reset(f)
	db.pruneSealedLocked()
	return nil
}

// pruneSealedLocked evicts the oldest sealed files while the retained bytes
// exceed the budget. The newest sealed file always survives, so the floor
// never catches up to the head in one step and a freshly caught-up follower
// keeps a resume window. A failed remove stops pruning; the next seal
// retries.
func (db *DB) pruneSealedLocked() {
	var total int64
	for _, s := range db.sealed {
		total += s.bytes
	}
	for len(db.sealed) > 1 && total > db.opts.LogRetainBytes {
		if err := db.fops.Remove(db.sealed[0].path); err != nil {
			return
		}
		total -= db.sealed[0].bytes
		db.sealed = db.sealed[1:]
	}
}

// LogTail is a subscription to the committed record stream, created by
// TailLog. Next blocks until a record at or past the requested position is
// committed; Close unblocks it. A LogTail is safe for one consumer.
type LogTail struct {
	db      *DB
	next    uint64
	buf     []logRec
	closeCh chan struct{}
	closed  bool
}

// TailLog opens a subscription streaming every committed record with
// LSN >= fromLSN (0 is treated as 1: the whole retained history). Returns
// ErrLogCompacted when fromLSN predates the retained floor.
func (db *DB) TailLog(fromLSN uint64) (*LogTail, error) {
	if fromLSN == 0 {
		fromLSN = 1
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	if floor := db.logFloorLocked(); fromLSN < floor {
		return nil, fmt.Errorf("%w: requested %d, floor %d", ErrLogCompacted, fromLSN, floor)
	}
	return &LogTail{db: db, next: fromLSN, closeCh: make(chan struct{})}, nil
}

// Close unblocks a pending Next and releases the tail.
func (t *LogTail) Close() error {
	if !t.closed {
		t.closed = true
		close(t.closeCh)
	}
	return nil
}

// Next returns the next committed record, blocking until one is available.
// It returns ErrTailClosed after Close, ErrClosed once the store closes,
// and ErrLogCompacted if retention overtook the tail's position (a consumer
// too slow for the history budget must re-bootstrap from a snapshot).
func (t *LogTail) Next() (LogRecord, error) {
	for {
		if len(t.buf) > 0 {
			raw := t.buf[0]
			t.buf = t.buf[1:]
			if raw.lsn < t.next {
				// Duplicate position (snapshot-restore records share one
				// LSN): the first record of a position wins.
				continue
			}
			rec, err := decodeWALRecord(raw.payload)
			if err != nil {
				return LogRecord{}, err
			}
			t.next = raw.lsn + 1
			out := LogRecord{LSN: raw.lsn, Annotation: rec.annotation, Entries: make([]LogEntry, len(rec.entries))}
			for i, e := range rec.entries {
				out.Entries[i] = LogEntry{Key: e.key, Value: e.value, Tombstone: e.tombstone}
			}
			return out, nil
		}
		select {
		case <-t.closeCh:
			return LogRecord{}, ErrTailClosed
		default:
		}

		var sealedPath string
		var wait chan struct{}
		db := t.db
		db.mu.RLock()
		switch {
		case db.closed:
			db.mu.RUnlock()
			return LogRecord{}, ErrClosed
		case t.next < db.logFloorLocked():
			floor := db.logFloorLocked()
			db.mu.RUnlock()
			return LogRecord{}, fmt.Errorf("%w: tail at %d, floor %d", ErrLogCompacted, t.next, floor)
		}
		for _, s := range db.sealed {
			if t.next <= s.last {
				sealedPath = s.path
				break
			}
		}
		if sealedPath == "" {
			for _, r := range db.activeRecs {
				if r.lsn >= t.next {
					t.buf = append(t.buf, r)
				}
			}
			if len(t.buf) == 0 {
				wait = db.tailCh
			}
		}
		db.mu.RUnlock()

		if sealedPath != "" {
			recs, err := readSealedRecords(sealedPath, t.next)
			if err != nil {
				if errors.Is(err, os.ErrNotExist) {
					continue // pruned under us; the floor check above decides
				}
				return LogRecord{}, err
			}
			if len(recs) == 0 {
				return LogRecord{}, fmt.Errorf("store: sealed log %s has no records past lsn %d", sealedPath, t.next)
			}
			t.buf = recs
			continue
		}
		if wait != nil {
			select {
			case <-wait:
			case <-t.closeCh:
				return LogRecord{}, ErrTailClosed
			}
		}
	}
}

// ExportSnapshot captures a consistent copy of the live key space and the
// LSN it is current through: the state handoff for a follower whose
// requested position has been compacted away. The follower restores the
// pairs (RestoreSnapshot) and resumes tailing from SnapshotLSN+1.
func (db *DB) ExportSnapshot() (pairs []LogEntry, snapshotLSN uint64, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, 0, ErrClosed
	}
	snapshotLSN = db.lastLSN
	sources := make([]iterator, 0, len(db.segments)+1)
	sources = append(sources, db.mem.iter(nil, nil))
	for i := len(db.segments) - 1; i >= 0; i-- {
		it, err := db.segments[i].iter(nil, nil)
		if err != nil {
			return nil, 0, err
		}
		sources = append(sources, it)
	}
	mi := newMergeIter(sources)
	for {
		e, ok := mi.next()
		if !ok {
			return pairs, snapshotLSN, nil
		}
		if e.tombstone {
			continue
		}
		pairs = append(pairs, LogEntry{
			Key:   append([]byte(nil), e.key...),
			Value: append([]byte(nil), e.value...),
		})
	}
}

// restoreChunkBytes bounds one RestoreSnapshot record, keeping each framed
// record far under maxWALRecord.
const restoreChunkBytes = 2 << 20

// RestoreSnapshot installs an exported snapshot into a (normally fresh)
// store and fast-forwards the LSN sequence to snapshotLSN, so the next
// ApplyReplicated record must carry snapshotLSN+1. The pairs are written as
// ordinary WAL records (all stamped snapshotLSN) — a restored follower
// recovers its state from its own log exactly like a leader does.
func (db *DB) RestoreSnapshot(pairs []LogEntry, snapshotLSN uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if snapshotLSN < db.lastLSN {
		return fmt.Errorf("store: snapshot lsn %d behind applied %d", snapshotLSN, db.lastLSN)
	}
	var recs []logRec
	var chunk []walEntry
	var chunkBytes int
	flushChunk := func() error {
		if len(chunk) == 0 {
			return nil
		}
		payload := encodeLSNRecord(snapshotLSN, nil, chunk)
		if err := db.wal.writeRecordNoSync(payload); err != nil {
			return err
		}
		recs = append(recs, logRec{lsn: snapshotLSN, payload: payload})
		for _, e := range chunk {
			db.mem.put(e.key, e.value)
		}
		chunk, chunkBytes = nil, 0
		return nil
	}
	for _, p := range pairs {
		if len(p.Key) == 0 {
			return errors.New("store: empty key in snapshot")
		}
		if p.Tombstone {
			return errors.New("store: tombstone in snapshot")
		}
		chunk = append(chunk, walEntry{key: p.Key, value: p.Value})
		chunkBytes += len(p.Key) + len(p.Value)
		if chunkBytes >= restoreChunkBytes {
			if err := flushChunk(); err != nil {
				return err
			}
		}
	}
	if err := flushChunk(); err != nil {
		return err
	}
	if db.opts.SyncWrites {
		if err := db.wal.sync(); err != nil {
			return err
		}
	}
	db.activeRecs = append(db.activeRecs, recs...)
	db.lastLSN = snapshotLSN
	db.notifyTailLocked()
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// ApplyReplicated commits one record shipped from a leader's log, with the
// leader's own LSN — the follower half of the replication contract. The
// record must extend the local sequence exactly (lsn == AppliedLSN()+1);
// a gap means the streams diverged and the caller must re-bootstrap. The
// record is framed, synced (under SyncWrites) and installed exactly like a
// local WriteBatch, so a follower's crash recovery and its own TailLog work
// unchanged.
func (db *DB) ApplyReplicated(lsn uint64, annotation []byte, entries []LogEntry) error {
	if len(entries) == 0 {
		return errors.New("store: empty replicated record")
	}
	wes := make([]walEntry, len(entries))
	for i, e := range entries {
		if len(e.Key) == 0 {
			return errors.New("store: empty key in replicated record")
		}
		wes[i] = walEntry{key: e.Key, value: e.Value, tombstone: e.Tombstone}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if lsn != db.lastLSN+1 {
		return fmt.Errorf("store: replicated lsn %d does not extend applied %d", lsn, db.lastLSN)
	}
	payload := encodeLSNRecord(lsn, annotation, wes)
	if err := db.wal.writeRecord(payload); err != nil {
		return err
	}
	for _, e := range wes {
		if e.tombstone {
			db.mem.delete(e.key)
		} else {
			db.mem.put(e.key, e.value)
		}
	}
	db.noteCommitLocked(lsn, payload)
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}
