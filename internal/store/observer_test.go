package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// recObserver records callbacks for assertions.
type recObserver struct {
	mu          sync.Mutex
	syncWaves   []uint64
	compactions int
	compactErrs int
}

func (o *recObserver) WALSync(wave uint64, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.syncWaves = append(o.syncWaves, wave)
}

func (o *recObserver) Compaction(d time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.compactions++
	if err != nil {
		o.compactErrs++
	}
}

func TestObserverWALSyncAndWaveTags(t *testing.T) {
	db, err := Open(t.TempDir(), Options{SyncWrites: true, DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	obs := &recObserver{}
	db.SetObserver(obs)

	// A plain Put syncs untagged.
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A tagged wave's single sync carries the wave ID.
	var b WriteBatch
	b.Put([]byte("k2"), []byte("v2"))
	if err := db.ApplyAllTagged([]*WriteBatch{&b}, 7); err != nil {
		t.Fatal(err)
	}
	// Explicit Sync is untagged again — the tag must not stick.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}

	obs.mu.Lock()
	waves := append([]uint64(nil), obs.syncWaves...)
	obs.mu.Unlock()
	want := []uint64{0, 7, 0}
	if fmt.Sprint(waves) != fmt.Sprint(want) {
		t.Fatalf("sync waves = %v, want %v", waves, want)
	}

	// Removing the observer stops callbacks.
	db.SetObserver(nil)
	if err := db.Put([]byte("k3"), []byte("v3")); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	n := len(obs.syncWaves)
	obs.mu.Unlock()
	if n != len(want) {
		t.Fatalf("observer still called after removal: %d syncs", n)
	}
}

func TestObserverCompaction(t *testing.T) {
	db, err := Open(t.TempDir(), Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	obs := &recObserver{}
	db.SetObserver(obs)

	// Two segments so the forced merge has work to do.
	for i := range 2 {
		if err := db.Put([]byte{byte('a' + i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.compactions != 1 || obs.compactErrs != 0 {
		t.Fatalf("compactions = %d (errs %d), want 1 clean merge", obs.compactions, obs.compactErrs)
	}
}
