package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mkBatch(kv ...string) *WriteBatch {
	var b WriteBatch
	for i := 0; i+1 < len(kv); i += 2 {
		b.Put([]byte(kv[i]), []byte(kv[i+1]))
	}
	return &b
}

func TestApplyAllVisibleAndRecovered(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	// Later batches overwrite earlier ones — slice order must win.
	if err := db.ApplyAll([]*WriteBatch{
		mkBatch("x", "old", "a", "1"),
		mkBatch("b", "2"),
		mkBatch("x", "new", "c", "3"),
	}); err != nil {
		t.Fatal(err)
	}
	check := func(d *DB, what string) {
		t.Helper()
		for k, want := range map[string]string{"x": "new", "a": "1", "b": "2", "c": "3"} {
			v, err := d.Get([]byte(k))
			if err != nil || string(v) != want {
				t.Fatalf("%s: %s = %q %v, want %q", what, k, v, err, want)
			}
		}
	}
	check(db, "live")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2, "reopened")
}

func TestApplyAllEmptyAndClosed(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyAll(nil); err != nil {
		t.Fatalf("empty sequence: %v", err)
	}
	if err := db.ApplyAll([]*WriteBatch{{}, {}}); err != nil {
		t.Fatalf("all-empty sequence: %v", err)
	}
	var bad WriteBatch
	bad.entries = append(bad.entries, walEntry{key: nil, value: []byte("v")})
	if err := db.ApplyAll([]*WriteBatch{mkBatch("k", "v"), &bad}); err == nil {
		t.Fatal("empty key accepted")
	}
	// Validation rejects before any WAL append: the healthy batch must not
	// have been applied either.
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial sequence applied: %v", err)
	}
	db.Close()
	if err := db.ApplyAll([]*WriteBatch{mkBatch("k", "v")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed db: %v", err)
	}
}

// TestApplyAllCrashPrefix is the ordering half of the pipelined-commit
// contract: two ApplyAll "waves" land in the WAL in dispatch order, so a
// crash at ANY byte boundary recovers a prefix of the batch sequence —
// wave 2's state is never visible without wave 1's, and the shared key
// always carries the newest recovered wave's value.
func TestApplyAllCrashPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	// Wave 1: two batches; wave 2: two batches. "x" is the same-shard key
	// both waves rewrite; the w* markers identify which batches survived.
	if err := db.ApplyAll([]*WriteBatch{
		mkBatch("x", "wave1", "w1a", "1"),
		mkBatch("w1b", "1"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyAll([]*WriteBatch{
		mkBatch("x", "wave2", "w2a", "1"),
		mkBatch("w2b", "1"),
	}); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	db.wal.f.Close() // crash: no Close, no Flush

	walPath := filepath.Join(dir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	has := func(d *DB, k string) bool {
		_, err := d.Get([]byte(k))
		return err == nil
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(dir, Options{DisableAutoCompaction: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Recovered batches must form a prefix of [w1a, w1b, w2a, w2b].
		chain := []string{"w2b", "w2a", "w1b", "w1a"}
		for i := 0; i+1 < len(chain); i++ {
			if has(db2, chain[i]) && !has(db2, chain[i+1]) {
				t.Fatalf("cut %d: %s recovered without %s — not a prefix", cut, chain[i], chain[i+1])
			}
		}
		switch v, err := db2.Get([]byte("x")); {
		case has(db2, "w2a"):
			if err != nil || string(v) != "wave2" {
				t.Fatalf("cut %d: x = %q %v, want wave2", cut, v, err)
			}
		case has(db2, "w1a"):
			if err != nil || string(v) != "wave1" {
				t.Fatalf("cut %d: x = %q %v, want wave1", cut, v, err)
			}
		default:
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("cut %d: x = %q %v, want missing", cut, v, err)
			}
		}
		db2.wal.f.Close() // keep the on-disk bytes for the next cut
	}
}

// TestApplyAllSingleSync: a K-batch sequence pays one WAL fsync where K
// Apply calls pay K — the group-commit economics of the pipelined wave.
func TestApplyAllSingleSync(t *testing.T) {
	fo := &faultOps{}
	dir := t.TempDir()
	db, err := Open(dir, Options{SyncWrites: true, DisableAutoCompaction: true, FileOps: fo})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const k = 5
	seq := make([]*WriteBatch, k)
	for i := range seq {
		seq[i] = mkBatch(fmt.Sprintf("all%d", i), "v")
	}
	before := fo.walSyncs
	if err := db.ApplyAll(seq); err != nil {
		t.Fatal(err)
	}
	if got := fo.walSyncs - before; got != 1 {
		t.Fatalf("ApplyAll of %d batches paid %d syncs, want 1", k, got)
	}

	before = fo.walSyncs
	for i := 0; i < k; i++ {
		if err := db.Apply(mkBatch(fmt.Sprintf("one%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := fo.walSyncs - before; got != k {
		t.Fatalf("%d Apply calls paid %d syncs, want %d", k, got, k)
	}
}

// TestApplyAllWALFaultNothingVisible: a WAL write or sync failure fails the
// whole sequence and installs nothing — the running process never shows a
// state the call reported as failed.
func TestApplyAllWALFaultNothingVisible(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(*faultOps)
		// durable: the fault hit after the record bytes reached the file
		// (a sync fault), so reopening resolves the in-doubt records to
		// committed. A write fault leaves at most a torn prefix, which
		// replay discards.
		durable bool
	}{
		{name: "write", arm: func(f *faultOps) { f.failWALWriteAt = f.walWrites + 1 }},
		{name: "sync", arm: func(f *faultOps) { f.failWALSyncAt = f.walSyncs + 1 }, durable: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fo := &faultOps{}
			dir := t.TempDir()
			db, err := Open(dir, Options{SyncWrites: true, DisableAutoCompaction: true, FileOps: fo})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := db.ApplyAll([]*WriteBatch{mkBatch("pre", "1")}); err != nil {
				t.Fatal(err)
			}
			tc.arm(fo)
			err = db.ApplyAll([]*WriteBatch{mkBatch("a", "1"), mkBatch("b", "2")})
			if !errors.Is(err, errInjected) {
				t.Fatalf("err = %v, want injected", err)
			}
			for _, k := range []string{"a", "b"} {
				if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
					t.Fatalf("failed sequence installed %s: %v", k, err)
				}
			}
			// The failed records' LSNs are in doubt (their bytes may be on
			// disk); the log refuses to re-bind them and disables itself
			// until a reopen resolves the tail — appending past an in-doubt
			// record would let crash replay and a replication tail disagree
			// about what its LSN means.
			if err := db.ApplyAll([]*WriteBatch{mkBatch("after", "3")}); !errors.Is(err, ErrWALFailed) {
				t.Fatalf("append after WAL fault: %v, want ErrWALFailed", err)
			}
			db.Close()
			db2, err := Open(dir, Options{SyncWrites: true, DisableAutoCompaction: true, FileOps: fo})
			if err != nil {
				t.Fatalf("reopen after fault: %v", err)
			}
			defer db2.Close()
			for _, k := range []string{"a", "b"} {
				_, err := db2.Get([]byte(k))
				if tc.durable && err != nil {
					t.Fatalf("reopen lost in-doubt record %s that was on disk: %v", k, err)
				}
				if !tc.durable && !errors.Is(err, ErrNotFound) {
					t.Fatalf("reopen resurrected torn record %s: %v", k, err)
				}
			}
			// Reopen resolved the doubt; the store is serviceable again.
			if err := db2.ApplyAll([]*WriteBatch{mkBatch("after", "3")}); err != nil {
				t.Fatalf("append after reopen: %v", err)
			}
			if v, err := db2.Get([]byte("after")); err != nil || string(v) != "3" {
				t.Fatalf("after = %q %v", v, err)
			}
		})
	}
}

// TestApplyAllOversizeBatchRejectedUpFront: a batch over the WAL record cap
// must fail the sequence BEFORE any record reaches the buffered writer —
// otherwise the wave's earlier batches would sit valid in the buffer and
// become durable on the next flush, resurrecting a wave the caller was
// told failed.
func TestApplyAllOversizeBatchRejectedUpFront(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	var huge WriteBatch
	huge.Put([]byte("huge"), make([]byte, maxWALRecord))
	if err := db.ApplyAll([]*WriteBatch{mkBatch("small", "1"), &huge}); err == nil {
		t.Fatal("oversize batch accepted")
	}
	if _, err := db.Get([]byte("small")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed sequence installed small batch: %v", err)
	}
	// Nothing of the failed wave may survive later WAL activity + reopen.
	if err := db.Apply(mkBatch("later", "2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, k := range []string{"small", "huge"} {
		if _, err := db2.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("failed wave's %q resurrected after reopen: %v", k, err)
		}
	}
	if v, err := db2.Get([]byte("later")); err != nil || string(v) != "2" {
		t.Fatalf("later = %q %v", v, err)
	}
}
