package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// wal is the write-ahead log. Record framing:
//
//	[4] crc32 (Castagnoli) of everything after this field
//	[4] payload length
//	payload (rev 2, opBatchLSN — what every writer produces today):
//	  [1] op (3)
//	  [uvarint] log sequence number
//	  [uvarint] annotation length, annotation bytes (opaque to the engine)
//	  [uvarint] entry count, then per entry:
//	    [1] op (0 = put, 1 = delete)
//	    [uvarint] key length, key bytes
//	    [uvarint] value length, value bytes (absent for deletes)
//
// Replay also accepts the rev-1 payloads (a bare put/delete entry, or an
// opBatch-framed group) and assigns them sequential LSNs; Open then rewrites
// such a log in rev-2 framing so sealed history is uniformly addressable
// (log.go).
//
// Replay stops at the first corrupt or truncated record — the standard
// torn-write recovery contract: everything acknowledged before a crash is
// intact, a partial trailing record is discarded (and counted, so a torn
// tail is diagnosable: see Stats.WALDiscardedBytes).
type wal struct {
	f         WALFile
	w         *bufio.Writer
	syncEvery bool
	path      string
	// err is the sticky append failure. Once a record append, flush or
	// sync fails, the bytes of a record stamped with an LSN may or may not
	// be durable — and lastLSN was never advanced for it. Appending again
	// would re-bind that LSN to different content, making the log
	// ambiguous at that position: replay and a replication tail could then
	// disagree about what the LSN means (a leader/follower divergence).
	// So the log turns itself off instead; reopening the store replays
	// whatever actually landed and resolves every in-doubt record one way
	// or the other before new appends continue past them.
	err error
	// onSync, when set, is called with every sync's duration (flush +
	// fsync, the write path's durability stall). Called under the same
	// lock discipline as the sync itself.
	onSync func(d time.Duration)
}

type walEntry struct {
	key       []byte
	value     []byte
	tombstone bool
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxWALRecord bounds a single framed record (and therefore a WriteBatch):
// replay treats larger lengths as a corrupt tail, so writes refuse them.
const maxWALRecord = 64 << 20

const (
	opPut    = 0
	opDelete = 1
	// opBatch frames several puts/deletes in one CRC-checked record, so a
	// whole WriteBatch commits or is discarded atomically on replay.
	opBatch = 2
	// opBatchLSN is opBatch extended with a persisted log sequence number
	// and an opaque annotation blob — the rev-2 framing every writer
	// produces; the older ops survive only as replayable history.
	opBatchLSN = 3
)

// walRec is one decoded log record: its sequence number (0 until assigned,
// for legacy records), annotation, entries, and the exact payload bytes.
type walRec struct {
	lsn        uint64
	annotation []byte
	entries    []walEntry
	payload    []byte
	legacy     bool
}

// openWAL opens the log at path, replaying existing records. A truncated or
// corrupt tail is truncated away; discarded reports how many tail bytes
// that dropped (satelliting the silent-discard fix: a follower diverging on
// a torn leader log must be diagnosable).
func openWAL(fops FileOps, path string, syncWrites bool) (*wal, []walRec, int64, error) {
	f, err := fops.OpenWAL(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: opening wal: %w", err)
	}
	recs, validLen, discarded, err := replayWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	// Truncate any corrupt tail so new records don't append after garbage.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: truncating wal tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), syncEvery: syncWrites, path: path}, recs, discarded, nil
}

func replayWAL(f WALFile) ([]walRec, int64, int64, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, err
	}
	r := bufio.NewReaderSize(f, 64<<10)
	var recs []walRec
	var offset int64
	var header [8]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, offset, size - offset, nil
			}
			return nil, 0, 0, err
		}
		wantCRC := binary.LittleEndian.Uint32(header[0:4])
		plen := binary.LittleEndian.Uint32(header[4:8])
		if plen == 0 || plen > maxWALRecord {
			return recs, offset, size - offset, nil // implausible length: corrupt tail
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, offset, size - offset, nil
			}
			return nil, 0, 0, err
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return recs, offset, size - offset, nil // corrupt record: stop replay here
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return recs, offset, size - offset, nil
		}
		recs = append(recs, rec)
		offset += int64(8 + plen)
	}
}

// decodeWALRecord decodes one framed payload in either revision.
func decodeWALRecord(p []byte) (walRec, error) {
	if len(p) < 1 {
		return walRec{}, errors.New("store: short wal payload")
	}
	if p[0] != opBatchLSN {
		entries, err := decodeWALPayload(p)
		if err != nil {
			return walRec{}, err
		}
		return walRec{entries: entries, payload: p, legacy: true}, nil
	}
	rest := p[1:]
	lsn, n := binary.Uvarint(rest)
	if n <= 0 || lsn == 0 {
		return walRec{}, errors.New("store: bad wal record lsn")
	}
	rest = rest[n:]
	alen, n := binary.Uvarint(rest)
	if n <= 0 || alen > uint64(len(rest)-n) {
		return walRec{}, errors.New("store: bad wal annotation length")
	}
	rest = rest[n:]
	var annotation []byte
	if alen > 0 {
		annotation = append([]byte(nil), rest[:alen]...)
	}
	rest = rest[alen:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > uint64(len(rest)) {
		return walRec{}, errors.New("store: bad wal entry count")
	}
	rest = rest[n:]
	entries := make([]walEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		e, next, err := decodeWALSubEntry(rest)
		if err != nil {
			return walRec{}, err
		}
		entries = append(entries, e)
		rest = next
	}
	if len(rest) != 0 {
		return walRec{}, errors.New("store: trailing bytes in wal record")
	}
	return walRec{lsn: lsn, annotation: annotation, entries: entries, payload: p}, nil
}

// encodeLSNRecord frames entries (and the annotation) as one rev-2 payload
// stamped with lsn.
func encodeLSNRecord(lsn uint64, annotation []byte, entries []walEntry) []byte {
	buf := make([]byte, 0, walLSNRecordBound(annotation, entries))
	buf = append(buf, opBatchLSN)
	buf = binary.AppendUvarint(buf, lsn)
	buf = binary.AppendUvarint(buf, uint64(len(annotation)))
	buf = append(buf, annotation...)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendWALSubEntry(buf, e)
	}
	return buf
}

// walLSNRecordBound is a conservative upper bound on the framed payload
// encodeLSNRecord produces. A batch whose bound fits under maxWALRecord can
// never trip writeRecordNoSync's cap — which lets ApplyAll reject an
// oversize batch BEFORE anything of the sequence reaches the buffered
// writer.
func walLSNRecordBound(annotation []byte, entries []walEntry) int {
	size := 1 + 3*binary.MaxVarintLen64 + len(annotation)
	for _, e := range entries {
		size += 1 + 2*binary.MaxVarintLen64 + len(e.key) + len(e.value)
	}
	return size
}

// decodeWALPayload decodes one framed record into the entries it carries:
// a single entry for put/delete records, every sub-entry for batch records.
func decodeWALPayload(p []byte) ([]walEntry, error) {
	if len(p) < 1 {
		return nil, errors.New("store: short wal payload")
	}
	if p[0] == opBatch {
		rest := p[1:]
		count, n := binary.Uvarint(rest)
		if n <= 0 || count == 0 || count > uint64(len(rest)) {
			return nil, errors.New("store: bad wal batch count")
		}
		rest = rest[n:]
		entries := make([]walEntry, 0, count)
		for i := uint64(0); i < count; i++ {
			e, next, err := decodeWALSubEntry(rest)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
			rest = next
		}
		if len(rest) != 0 {
			return nil, errors.New("store: trailing bytes in wal batch")
		}
		return entries, nil
	}
	e, rest, err := decodeWALSubEntry(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("store: trailing bytes in wal record")
	}
	return []walEntry{e}, nil
}

// decodeWALSubEntry decodes one op+key[+value] unit and returns the
// remaining bytes.
func decodeWALSubEntry(p []byte) (walEntry, []byte, error) {
	if len(p) < 1 {
		return walEntry{}, nil, errors.New("store: short wal entry")
	}
	op := p[0]
	rest := p[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return walEntry{}, nil, errors.New("store: bad wal key length")
	}
	rest = rest[n:]
	key := append([]byte(nil), rest[:klen]...)
	rest = rest[klen:]
	switch op {
	case opDelete:
		return walEntry{key: key, tombstone: true}, rest, nil
	case opPut:
		vlen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < vlen {
			return walEntry{}, nil, errors.New("store: bad wal value length")
		}
		rest = rest[n:]
		value := append([]byte(nil), rest[:vlen]...)
		return walEntry{key: key, value: value}, rest[vlen:], nil
	default:
		return walEntry{}, nil, fmt.Errorf("store: unknown wal op %d", op)
	}
}

func appendWALSubEntry(buf []byte, e walEntry) []byte {
	if e.tombstone {
		buf = append(buf, opDelete)
		buf = binary.AppendUvarint(buf, uint64(len(e.key)))
		return append(buf, e.key...)
	}
	buf = append(buf, opPut)
	buf = binary.AppendUvarint(buf, uint64(len(e.key)))
	buf = append(buf, e.key...)
	buf = binary.AppendUvarint(buf, uint64(len(e.value)))
	return append(buf, e.value...)
}

// writeRecord frames and appends one payload, syncing when the log is
// configured to sync every record. writeRecordNoSync is the building block
// of ApplyAll, which appends a whole sequence of records and pays one sync
// at the end.
func (w *wal) writeRecord(buf []byte) error {
	if err := w.writeRecordNoSync(buf); err != nil {
		return err
	}
	if w.syncEvery {
		return w.syncLocked()
	}
	return nil
}

// errWALFailed reports the sticky failure on every call after the one that
// tripped it. ErrWALFailed lets callers distinguish "the log already gave
// up" from a fresh device error.
var ErrWALFailed = errors.New("store: wal disabled by an earlier write failure; reopen to recover")

func (w *wal) failed() error {
	if w.err == nil {
		return nil
	}
	return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.err)
}

func (w *wal) writeRecordNoSync(buf []byte) error {
	if err := w.failed(); err != nil {
		return err
	}
	// The cap is a validation error, rejected before any byte reaches the
	// buffer: nothing in-doubt, so it is not sticky.
	if len(buf) > maxWALRecord {
		return fmt.Errorf("store: wal record %d bytes exceeds %d-byte cap", len(buf), maxWALRecord)
	}
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], crc32.Checksum(buf, castagnoli))
	binary.LittleEndian.PutUint32(header[4:8], uint32(len(buf)))
	if _, err := w.w.Write(header[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(buf); err != nil {
		w.err = err
		return err
	}
	return nil
}

func (w *wal) sync() error { return w.syncLocked() }

func (w *wal) syncLocked() error {
	if err := w.failed(); err != nil {
		return err
	}
	var start time.Time
	if w.onSync != nil {
		start = time.Now()
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	err := w.f.Sync()
	if w.onSync != nil {
		// Failed syncs report too: a device stalling before it errors is
		// exactly what latency instrumentation exists to show.
		w.onSync(time.Since(start))
	}
	if err != nil {
		w.err = err
	}
	return err
}

// reset truncates the log after a memtable flush: the flushed segment now
// owns that data. Reached only when no committed record lives in the file
// (log.go sealWALLocked), so truncating to zero also destroys any in-doubt
// bytes a sticky failure was guarding — the failure clears with them.
func (w *wal) reset() error {
	if w.err == nil {
		if err := w.w.Flush(); err != nil {
			w.err = err
			return err
		}
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	w.err = nil
	return nil
}

// assignLSNs stamps sequential numbers onto legacy records, continuing
// from prior, and reports whether any were found. Deterministic for a
// given file, so repeated opens of an unmigrated log agree.
func assignLSNs(recs []walRec, prior uint64) (last uint64, migrated bool) {
	last = prior
	for i := range recs {
		if recs[i].legacy {
			last++
			recs[i].lsn = last
			recs[i].payload = encodeLSNRecord(last, nil, recs[i].entries)
			recs[i].legacy = false
			migrated = true
		} else if recs[i].lsn > last {
			last = recs[i].lsn
		}
	}
	return last, migrated
}

// rewriteWAL atomically replaces the active log with the given records
// (used to normalize legacy logs into rev-2 framing at open): the records
// are written to a sibling file, synced, and renamed over the original —
// a crash at any point leaves either the old or the new complete file.
func rewriteWAL(fops FileOps, w *wal, recs []walRec) (*wal, error) {
	tmpPath := w.path + ".migrate"
	f, err := fops.OpenWAL(tmpPath)
	if err != nil {
		return nil, fmt.Errorf("store: migrating wal: %w", err)
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	nw := &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), syncEvery: w.syncEvery, path: w.path}
	for _, r := range recs {
		if err := nw.writeRecordNoSync(r.payload); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := nw.w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.f.Close(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fops.Rename(tmpPath, w.path); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: migrating wal: %w", err)
	}
	// After the rename the already-open handle IS the active log, with the
	// write position at its end.
	return nw, nil
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
