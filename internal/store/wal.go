package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// wal is the write-ahead log. Record framing:
//
//	[4] crc32 (Castagnoli) of everything after this field
//	[4] payload length
//	payload:
//	  [1] op (0 = put, 1 = delete)
//	  [uvarint] key length, key bytes
//	  [uvarint] value length, value bytes (absent for deletes)
//
// Replay stops at the first corrupt or truncated record — the standard
// torn-write recovery contract: everything acknowledged before a crash is
// intact, a partial trailing record is discarded.
type wal struct {
	f         WALFile
	w         *bufio.Writer
	syncEvery bool
	path      string
	// onSync, when set, is called with every sync's duration (flush +
	// fsync, the write path's durability stall). Called under the same
	// lock discipline as the sync itself.
	onSync func(d time.Duration)
}

type walEntry struct {
	key       []byte
	value     []byte
	tombstone bool
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxWALRecord bounds a single framed record (and therefore a WriteBatch):
// replay treats larger lengths as a corrupt tail, so writes refuse them.
const maxWALRecord = 64 << 20

const (
	opPut    = 0
	opDelete = 1
	// opBatch frames several puts/deletes in one CRC-checked record, so a
	// whole WriteBatch commits or is discarded atomically on replay.
	opBatch = 2
)

// openWAL opens the log at path, replaying existing entries. A truncated or
// corrupt tail is tolerated (and discarded on the next reset).
func openWAL(fops FileOps, path string, syncWrites bool) (*wal, []walEntry, error) {
	f, err := fops.OpenWAL(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening wal: %w", err)
	}
	entries, validLen, err := replayWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate any corrupt tail so new records don't append after garbage.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncating wal tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), syncEvery: syncWrites, path: path}, entries, nil
}

func replayWAL(f WALFile) ([]walEntry, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	r := bufio.NewReaderSize(f, 64<<10)
	var entries []walEntry
	var offset int64
	var header [8]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return entries, offset, nil
			}
			return nil, 0, err
		}
		wantCRC := binary.LittleEndian.Uint32(header[0:4])
		plen := binary.LittleEndian.Uint32(header[4:8])
		if plen == 0 || plen > maxWALRecord {
			return entries, offset, nil // implausible length: corrupt tail
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return entries, offset, nil
			}
			return nil, 0, err
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return entries, offset, nil // corrupt record: stop replay here
		}
		es, err := decodeWALPayload(payload)
		if err != nil {
			return entries, offset, nil
		}
		entries = append(entries, es...)
		offset += int64(8 + plen)
	}
}

// decodeWALPayload decodes one framed record into the entries it carries:
// a single entry for put/delete records, every sub-entry for batch records.
func decodeWALPayload(p []byte) ([]walEntry, error) {
	if len(p) < 1 {
		return nil, errors.New("store: short wal payload")
	}
	if p[0] == opBatch {
		rest := p[1:]
		count, n := binary.Uvarint(rest)
		if n <= 0 || count == 0 || count > uint64(len(rest)) {
			return nil, errors.New("store: bad wal batch count")
		}
		rest = rest[n:]
		entries := make([]walEntry, 0, count)
		for i := uint64(0); i < count; i++ {
			e, next, err := decodeWALSubEntry(rest)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
			rest = next
		}
		if len(rest) != 0 {
			return nil, errors.New("store: trailing bytes in wal batch")
		}
		return entries, nil
	}
	e, rest, err := decodeWALSubEntry(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("store: trailing bytes in wal record")
	}
	return []walEntry{e}, nil
}

// decodeWALSubEntry decodes one op+key[+value] unit and returns the
// remaining bytes.
func decodeWALSubEntry(p []byte) (walEntry, []byte, error) {
	if len(p) < 1 {
		return walEntry{}, nil, errors.New("store: short wal entry")
	}
	op := p[0]
	rest := p[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return walEntry{}, nil, errors.New("store: bad wal key length")
	}
	rest = rest[n:]
	key := append([]byte(nil), rest[:klen]...)
	rest = rest[klen:]
	switch op {
	case opDelete:
		return walEntry{key: key, tombstone: true}, rest, nil
	case opPut:
		vlen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < vlen {
			return walEntry{}, nil, errors.New("store: bad wal value length")
		}
		rest = rest[n:]
		value := append([]byte(nil), rest[:vlen]...)
		return walEntry{key: key, value: value}, rest[vlen:], nil
	default:
		return walEntry{}, nil, fmt.Errorf("store: unknown wal op %d", op)
	}
}

func appendWALSubEntry(buf []byte, e walEntry) []byte {
	if e.tombstone {
		buf = append(buf, opDelete)
		buf = binary.AppendUvarint(buf, uint64(len(e.key)))
		return append(buf, e.key...)
	}
	buf = append(buf, opPut)
	buf = binary.AppendUvarint(buf, uint64(len(e.key)))
	buf = append(buf, e.key...)
	buf = binary.AppendUvarint(buf, uint64(len(e.value)))
	return append(buf, e.value...)
}

func (w *wal) append(e walEntry) error {
	buf := appendWALSubEntry(make([]byte, 0, 1+2*binary.MaxVarintLen64+len(e.key)+len(e.value)), e)
	return w.writeRecord(buf)
}

// appendBatch writes all entries as one opBatch record: one checksum frame,
// so replay applies the whole batch or none of it.
func (w *wal) appendBatch(entries []walEntry) error {
	if err := w.appendBatchNoSync(entries); err != nil {
		return err
	}
	if w.syncEvery {
		return w.syncLocked()
	}
	return nil
}

// walBatchRecordBound is a conservative upper bound on the framed record
// size appendBatchNoSync will produce for entries (uvarints never exceed
// MaxVarintLen64). A batch whose bound fits under maxWALRecord can never
// trip writeRecordNoSync's cap — which lets ApplyAll reject an oversize
// batch BEFORE anything of the sequence reaches the buffered writer.
func walBatchRecordBound(entries []walEntry) int {
	size := 1 + binary.MaxVarintLen64
	for _, e := range entries {
		size += 1 + 2*binary.MaxVarintLen64 + len(e.key) + len(e.value)
	}
	return size
}

// appendBatchNoSync frames the entries like appendBatch but never syncs,
// whatever the syncEvery setting — the building block of ApplyAll, which
// appends a whole sequence of batch records and pays one sync at the end.
func (w *wal) appendBatchNoSync(entries []walEntry) error {
	buf := make([]byte, 0, walBatchRecordBound(entries))
	buf = append(buf, opBatch)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendWALSubEntry(buf, e)
	}
	return w.writeRecordNoSync(buf)
}

func (w *wal) writeRecord(buf []byte) error {
	if err := w.writeRecordNoSync(buf); err != nil {
		return err
	}
	if w.syncEvery {
		return w.syncLocked()
	}
	return nil
}

func (w *wal) writeRecordNoSync(buf []byte) error {
	if len(buf) > maxWALRecord {
		return fmt.Errorf("store: wal record %d bytes exceeds %d-byte cap", len(buf), maxWALRecord)
	}
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], crc32.Checksum(buf, castagnoli))
	binary.LittleEndian.PutUint32(header[4:8], uint32(len(buf)))
	if _, err := w.w.Write(header[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	return nil
}

func (w *wal) sync() error { return w.syncLocked() }

func (w *wal) syncLocked() error {
	var start time.Time
	if w.onSync != nil {
		start = time.Now()
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	err := w.f.Sync()
	if w.onSync != nil {
		// Failed syncs report too: a device stalling before it errors is
		// exactly what latency instrumentation exists to show.
		w.onSync(time.Since(start))
	}
	return err
}

// reset truncates the log after a memtable flush: the flushed segment now
// owns that data.
func (w *wal) reset() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	return nil
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
