// Package store implements the embedded key-value store that persists Smart
// User Models and campaign state. The paper's deployment keeps profiles for
// 3,162,069 users in a commercial customer database; this reproduction
// provides the same durability contract with a small log-structured engine:
//
//   - every mutation is appended to a write-ahead log (CRC32-framed) before it
//     is acknowledged,
//   - recent data lives in a skiplist memtable with ordered iteration,
//   - when the memtable exceeds a threshold it is flushed to an immutable
//     sorted segment file,
//   - reads consult the memtable first, then segments newest-to-oldest,
//   - Compact merges all segments (dropping tombstones and shadowed
//     versions) into one.
//
// The engine is deliberately single-writer/multi-reader: SPA's ingest loop is
// a single pre-processor pipeline, and campaign scoring only reads.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrNotFound is returned by Get when the key does not exist (or was
// deleted).
var ErrNotFound = errors.New("store: key not found")

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("store: database closed")

// Options tune the engine. Zero values select defaults.
type Options struct {
	// MemtableBytes is the approximate memtable size that triggers a flush
	// to a segment file. Default 4 MiB.
	MemtableBytes int
	// SyncWrites fsyncs the WAL after every mutation. Durable but slow;
	// experiments leave it off and rely on explicit Sync at checkpoints.
	SyncWrites bool

	// DisableAutoCompaction turns the background compactor off; segments
	// then only merge through explicit Compact calls.
	DisableAutoCompaction bool
	// CompactMinRun is how many similar-sized trailing segments trigger a
	// background merge. Default 4.
	CompactMinRun int
	// CompactRatio bounds the size skew inside one tier: an older segment
	// joins the candidate run while its size is at most CompactRatio times
	// the bytes of the newer run members combined. Default 2.0.
	CompactRatio float64
	// CompactInterval is the idle poll period of the background compactor
	// (flushes also wake it immediately). Default 500 ms.
	CompactInterval time.Duration

	// LogRetainBytes budgets the sealed WAL history kept for replication
	// (log.go): after a memtable flush the old log is sealed and retained,
	// and the oldest sealed files are pruned once their total exceeds this.
	// The newest sealed file always survives. Default 64 MiB.
	LogRetainBytes int64

	// FileOps substitutes the filesystem seam (segment files and WAL).
	// Nil selects the os package. It exists for fault-injection tests —
	// including callers outside this package exercising their own
	// store-failure paths; production leaves it nil.
	FileOps FileOps
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.CompactMinRun <= 1 {
		o.CompactMinRun = 4
	}
	if o.CompactRatio <= 0 {
		o.CompactRatio = 2.0
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = 500 * time.Millisecond
	}
	if o.LogRetainBytes <= 0 {
		o.LogRetainBytes = 64 << 20
	}
	return o
}

// DB is the embedded key-value store. All methods are safe for concurrent
// use; writes serialize internally.
type DB struct {
	dir  string
	opts Options
	fops FileOps

	mu       sync.RWMutex
	mem      *memtable
	wal      *wal
	segments []*segment // ordered oldest → newest
	nextSeg  uint64
	closed   bool

	// Background compactor lifecycle. compactKick wakes the compactor after
	// a flush; closeCh + wg give Close a race-free shutdown.
	compactKick chan struct{}
	closeCh     chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
	compactErr  error  // last background compaction failure, under mu
	compactions uint64 // merges completed (background + forced), under mu

	// obs is the optional engine observer (observer.go); syncWave, written
	// under mu, tags the next WAL sync with the serving-layer wave it
	// belongs to (zero outside ApplyAllTagged).
	obs      obsPtr
	syncWave uint64

	// Replicated-log state (log.go), all under mu: the last committed LSN,
	// the in-memory mirror of the active WAL file, the sealed history
	// index, the next sealed-file sequence number, the corrupt tail bytes
	// discarded at open, and the broadcast channel tail subscribers block
	// on (closed and replaced on every commit).
	lastLSN      uint64
	activeRecs   []logRec
	sealed       []sealedLog
	nextWALSeq   uint64
	walDiscarded int64
	tailCh       chan struct{}
}

// Open opens (or creates) a database in dir, replaying any WAL left by a
// previous process.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating dir: %w", err)
	}
	fops := opts.FileOps
	if fops == nil {
		fops = osFileOps{}
	}
	db := &DB{
		dir:         dir,
		opts:        opts,
		fops:        fops,
		mem:         newMemtable(),
		compactKick: make(chan struct{}, 1),
		closeCh:     make(chan struct{}),
	}

	segs, maxID, err := loadSegments(dir)
	if err != nil {
		return nil, err
	}
	db.segments = segs
	db.nextSeg = maxID + 1

	// The sealed log history anchors the LSN sequence: the active file's
	// records continue from the newest sealed record.
	sealed, nextWALSeq, sealedLast, err := loadSealedLogs(dir)
	if err != nil {
		return nil, err
	}
	db.sealed = sealed
	db.nextWALSeq = nextWALSeq

	walPath := filepath.Join(dir, "wal.log")
	_ = fops.Remove(walPath + ".migrate") // stray file from a crashed migration
	w, recs, discarded, err := openWAL(fops, walPath, opts.SyncWrites)
	if err != nil {
		return nil, err
	}
	lastLSN, migrated := assignLSNs(recs, sealedLast)
	if migrated {
		// Legacy (pre-LSN) records: rewrite the active log in rev-2 framing
		// so the history is uniformly LSN-addressed before its first seal.
		if w, err = rewriteWAL(fops, w, recs); err != nil {
			return nil, err
		}
	}
	db.wal = w
	db.lastLSN = lastLSN
	db.walDiscarded = discarded
	db.tailCh = make(chan struct{})
	// Report WAL sync durations to the observer. Every sync runs under
	// db.mu, so reading syncWave here is ordered with ApplyAllTagged's
	// write of it.
	w.onSync = func(d time.Duration) {
		if o := db.observer(); o != nil {
			o.WALSync(db.syncWave, d)
		}
	}
	for _, rec := range recs {
		for _, e := range rec.entries {
			if e.tombstone {
				db.mem.delete(e.key)
			} else {
				db.mem.put(e.key, e.value)
			}
		}
		db.activeRecs = append(db.activeRecs, logRec{lsn: rec.lsn, payload: rec.payload})
	}
	if !opts.DisableAutoCompaction {
		db.wg.Add(1)
		go db.compactLoop()
	}
	return db, nil
}

// Put stores value under key. Both are copied; the caller may reuse the
// slices. Empty keys are rejected.
func (db *DB) Put(key, value []byte) error {
	if len(key) == 0 {
		return errors.New("store: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	lsn := db.lastLSN + 1
	payload := encodeLSNRecord(lsn, nil, []walEntry{{key: key, value: value}})
	if err := db.wal.writeRecord(payload); err != nil {
		return err
	}
	db.mem.put(key, value)
	db.noteCommitLocked(lsn, payload)
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// Delete removes key. Deleting a missing key is not an error (the tombstone
// still shadows any segment copy).
func (db *DB) Delete(key []byte) error {
	if len(key) == 0 {
		return errors.New("store: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	lsn := db.lastLSN + 1
	payload := encodeLSNRecord(lsn, nil, []walEntry{{key: key, tombstone: true}})
	if err := db.wal.writeRecord(payload); err != nil {
		return err
	}
	db.mem.delete(key)
	db.noteCommitLocked(lsn, payload)
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// Get returns the value stored under key. The returned slice is a copy.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	if v, tomb, ok := db.mem.get(key); ok {
		if tomb {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for i := len(db.segments) - 1; i >= 0; i-- {
		v, tomb, ok, err := db.segments[i].get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			if tomb {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Flush forces the memtable to a segment and truncates the WAL.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.len() == 0 {
		return nil
	}
	id := db.nextSeg
	path := segmentPath(db.dir, id)
	if err := writeSegment(db.fops, path, db.mem.sortedEntries()); err != nil {
		return err
	}
	seg, err := openSegment(path, id)
	if err != nil {
		return err
	}
	db.segments = append(db.segments, seg)
	db.nextSeg++
	db.mem = newMemtable()
	if err := db.sealWALLocked(); err != nil {
		return err
	}
	db.kickCompactor()
	return nil
}

// kickCompactor nudges the background compactor without blocking; a full
// channel means a wake-up is already pending.
func (db *DB) kickCompactor() {
	select {
	case db.compactKick <- struct{}{}:
	default:
	}
}

// Sync flushes the WAL to stable storage without flushing the memtable.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.wal.sync()
}

// Compact is the forced stop-the-world full merge: every segment collapses
// into one, dropping tombstones and shadowed versions. The memtable is
// flushed first so the result is a full snapshot. Routine merging happens
// continuously in the background (see compaction.go); Compact remains for
// checkpoints and tests that want a single-segment store now.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	if len(db.segments) <= 1 {
		return nil
	}
	t0 := time.Now()
	err := db.compactFullLocked()
	db.noteCompaction(time.Since(t0), err)
	return err
}

// compactFullLocked merges every segment into one; the caller holds db.mu
// and has flushed the memtable.
func (db *DB) compactFullLocked() error {
	merged, err := mergeSegments(db.segments, true)
	if err != nil {
		return err
	}
	id := db.nextSeg
	path := segmentPath(db.dir, id)
	if err := writeSegment(db.fops, path, merged); err != nil {
		return err
	}
	seg, err := openSegment(path, id)
	if err != nil {
		return err
	}
	old := db.segments
	db.segments = []*segment{seg}
	db.nextSeg++
	db.compactions++
	// Remove oldest-first: at any crash point the surviving files still
	// shadow each other correctly when reloaded in id order.
	for _, s := range old {
		s.close()
		if err := db.fops.Remove(s.path); err != nil {
			return fmt.Errorf("store: removing old segment: %w", err)
		}
	}
	return nil
}

// CompactionError returns the most recent background compaction failure, if
// any. Background failures never corrupt the store — a failed merge leaves
// the original segments in place — but they do mean read amplification
// stops improving, so health checks should surface this.
func (db *DB) CompactionError() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.compactErr
}

// Len returns the number of live keys. It is O(total entries) and intended
// for tests and reporting, not hot paths.
func (db *DB) Len() (int, error) {
	n := 0
	err := db.Scan(nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Scan visits live keys in [start, end) in ascending order, calling fn for
// each; fn returning false stops the scan. nil start means the beginning,
// nil end means past the last key. The key/value slices passed to fn are
// only valid during the call.
func (db *DB) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	sources := make([]iterator, 0, len(db.segments)+1)
	// Newest source first: memtable, then segments newest→oldest. mergeIter
	// resolves duplicate keys in favor of the earliest source.
	sources = append(sources, db.mem.iter(start, end))
	for i := len(db.segments) - 1; i >= 0; i-- {
		it, err := db.segments[i].iter(start, end)
		if err != nil {
			return err
		}
		sources = append(sources, it)
	}
	mi := newMergeIter(sources)
	for {
		e, ok := mi.next()
		if !ok {
			return nil
		}
		if e.tombstone {
			continue
		}
		if !fn(e.key, e.value) {
			return nil
		}
	}
}

// Keys returns all live keys in [start, end); convenience wrapper over Scan.
func (db *DB) Keys(start, end []byte) ([][]byte, error) {
	var keys [][]byte
	err := db.Scan(start, end, func(k, _ []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	})
	return keys, err
}

// SegmentCount reports how many immutable segments back the store.
func (db *DB) SegmentCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.segments)
}

// Stats is a point-in-time snapshot of engine internals, cheap enough for a
// metrics endpoint to poll.
type Stats struct {
	// Segments is the immutable segment count; SegmentBytes their on-disk
	// total.
	Segments     int
	SegmentBytes int64
	// MemtableKeys / MemtableBytes describe the mutable tier.
	MemtableKeys  int
	MemtableBytes int
	// Compactions counts merges completed since open (background tiers and
	// forced Compact calls).
	Compactions uint64
	// CompactionErr is the most recent background compaction failure, empty
	// when healthy.
	CompactionErr string
	// AppliedLSN is the last committed log sequence number; LogFloorLSN the
	// oldest LSN still retained (log.go).
	AppliedLSN  uint64
	LogFloorLSN uint64
	// WALSealedFiles / WALSealedBytes describe the retained log history.
	WALSealedFiles int
	WALSealedBytes int64
	// WALDiscardedBytes counts the corrupt tail bytes replay dropped at
	// open — zero on a clean log, nonzero after a torn write, so a
	// replication divergence on a crashed leader is diagnosable.
	WALDiscardedBytes int64
}

// Stats snapshots the engine counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := Stats{
		Segments:          len(db.segments),
		MemtableKeys:      db.mem.len(),
		MemtableBytes:     db.mem.bytes,
		Compactions:       db.compactions,
		AppliedLSN:        db.lastLSN,
		LogFloorLSN:       db.logFloorLocked(),
		WALSealedFiles:    len(db.sealed),
		WALDiscardedBytes: db.walDiscarded,
	}
	for _, s := range db.segments {
		st.SegmentBytes += s.size
	}
	for _, s := range db.sealed {
		st.WALSealedBytes += s.bytes
	}
	if db.compactErr != nil {
		st.CompactionErr = db.compactErr.Error()
	}
	return st
}

// Close flushes and releases all resources. The DB is unusable afterwards.
// The background compactor is stopped and drained first, so no goroutine
// outlives a returned Close.
func (db *DB) Close() error {
	db.closeOnce.Do(func() { close(db.closeCh) })
	db.wg.Wait()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	err := db.flushLocked()
	for _, s := range db.segments {
		s.close()
	}
	if werr := db.wal.close(); err == nil {
		err = werr
	}
	db.closed = true
	// Wake blocked tail subscribers so they observe the close.
	db.notifyTailLocked()
	return err
}

func loadSegments(dir string) ([]*segment, uint64, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.dat"))
	if err != nil {
		return nil, 0, err
	}
	type idPath struct {
		id   uint64
		path string
	}
	var found []idPath
	for _, p := range names {
		var id uint64
		base := filepath.Base(p)
		if _, err := fmt.Sscanf(base, "seg-%016x.dat", &id); err != nil {
			continue // foreign file; ignore
		}
		found = append(found, idPath{id, p})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].id < found[j].id })
	var segs []*segment
	var maxID uint64
	for _, f := range found {
		s, err := openSegment(f.path, f.id)
		if err != nil {
			return nil, 0, fmt.Errorf("store: opening %s: %w", f.path, err)
		}
		segs = append(segs, s)
		if f.id > maxID {
			maxID = f.id
		}
	}
	return segs, maxID, nil
}

func segmentPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x.dat", id))
}

// entry is the unified record shape flowing between memtable, WAL and
// segments.
type entry struct {
	key       []byte
	value     []byte
	tombstone bool
}

type iterator interface {
	// next returns the next entry in key order; ok=false means exhausted.
	next() (entry, bool)
}

// mergeIter merges already-sorted iterators; on duplicate keys the iterator
// that appears earliest in sources wins (sources must therefore be ordered
// newest first).
type mergeIter struct {
	sources []iterator
	heads   []*entry
}

func newMergeIter(sources []iterator) *mergeIter {
	m := &mergeIter{sources: sources, heads: make([]*entry, len(sources))}
	for i := range sources {
		m.advance(i)
	}
	return m
}

func (m *mergeIter) advance(i int) {
	e, ok := m.sources[i].next()
	if ok {
		m.heads[i] = &e
	} else {
		m.heads[i] = nil
	}
}

func (m *mergeIter) next() (entry, bool) {
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best == -1 || bytes.Compare(h.key, m.heads[best].key) < 0 {
			best = i
		}
	}
	if best == -1 {
		return entry{}, false
	}
	out := *m.heads[best]
	// Consume the winner and every older duplicate of the same key.
	key := append([]byte(nil), out.key...)
	for i := range m.heads {
		for m.heads[i] != nil && bytes.Equal(m.heads[i].key, key) {
			m.advance(i)
		}
	}
	return out, true
}
