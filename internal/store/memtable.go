package store

import "bytes"

// memtable is a skiplist keyed by []byte. Tombstones are stored inline so a
// delete shadows older segment data during reads and merges.
//
// A skiplist (rather than Go's map) keeps keys ordered, which Scan and
// segment flushing need, without a sort on every flush.
const (
	maxHeight = 16
	// pBranch is the branching probability expressed as a threshold over a
	// 32-bit draw: ~1/4 keeps towers short and cache-friendly.
	pBranch = 1 << 30
)

type skipNode struct {
	key       []byte
	value     []byte
	tombstone bool
	next      []*skipNode
}

type memtable struct {
	head    *skipNode
	height  int
	count   int
	bytes   int
	rndSeed uint64
}

func newMemtable() *memtable {
	return &memtable{
		head:    &skipNode{next: make([]*skipNode, maxHeight)},
		height:  1,
		rndSeed: 0x2545f4914f6cdd1d,
	}
}

func (m *memtable) len() int { return m.count }

// randHeight draws a tower height with geometric distribution.
func (m *memtable) randHeight() int {
	h := 1
	for h < maxHeight {
		m.rndSeed ^= m.rndSeed << 13
		m.rndSeed ^= m.rndSeed >> 7
		m.rndSeed ^= m.rndSeed << 17
		if uint32(m.rndSeed) >= pBranch {
			break
		}
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, filling prev
// with the rightmost node before it at every level when prev is non-nil.
func (m *memtable) findGreaterOrEqual(key []byte, prev []*skipNode) *skipNode {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

func (m *memtable) upsert(key, value []byte, tombstone bool) {
	prev := make([]*skipNode, maxHeight)
	for i := range prev {
		prev[i] = m.head
	}
	n := m.findGreaterOrEqual(key, prev)
	if n != nil && bytes.Equal(n.key, key) {
		m.bytes += len(value) - len(n.value)
		n.value = append(n.value[:0], value...)
		n.tombstone = tombstone
		return
	}
	h := m.randHeight()
	if h > m.height {
		m.height = h
	}
	node := &skipNode{
		key:       append([]byte(nil), key...),
		value:     append([]byte(nil), value...),
		tombstone: tombstone,
		next:      make([]*skipNode, h),
	}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	m.count++
	m.bytes += len(key) + len(value) + 32
}

func (m *memtable) put(key, value []byte) { m.upsert(key, value, false) }

func (m *memtable) delete(key []byte) { m.upsert(key, nil, true) }

func (m *memtable) get(key []byte) (value []byte, tombstone, ok bool) {
	n := m.findGreaterOrEqual(key, nil)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false, false
	}
	return n.value, n.tombstone, true
}

// sortedEntries returns every entry (including tombstones) in key order.
func (m *memtable) sortedEntries() []entry {
	out := make([]entry, 0, m.count)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, entry{key: n.key, value: n.value, tombstone: n.tombstone})
	}
	return out
}

// memIter iterates entries in [start, end); nil bounds are open.
type memIter struct {
	node *skipNode
	end  []byte
}

func (m *memtable) iter(start, end []byte) iterator {
	var n *skipNode
	if start == nil {
		n = m.head.next[0]
	} else {
		n = m.findGreaterOrEqual(start, nil)
	}
	return &memIter{node: n, end: end}
}

func (it *memIter) next() (entry, bool) {
	if it.node == nil {
		return entry{}, false
	}
	if it.end != nil && bytes.Compare(it.node.key, it.end) >= 0 {
		it.node = nil
		return entry{}, false
	}
	e := entry{key: it.node.key, value: it.node.value, tombstone: it.node.tombstone}
	it.node = it.node.next[0]
	return e, true
}
