package store

import (
	"encoding/binary"
	"errors"
	"math"
)

// bloomFilter is a classic split-hash Bloom filter over segment keys. A
// point Get consults the filter before touching the segment's sparse index;
// a negative answer proves the key is absent, so cold segments are skipped
// without any comparisons. False positives only cost the ordinary lookup.
//
// Hashing uses 64-bit FNV-1a split into two 32-bit halves combined by
// double hashing (h1 + i*h2), the standard trick that makes k probes cost
// one hash pass over the key.
type bloomFilter struct {
	bits []byte
	k    uint32
}

// bloomBitsPerKey sizes filters at build time: 10 bits/key ≈ 1 % false
// positive rate at the optimal k.
const bloomBitsPerKey = 10

// newBloomFilter sizes a filter for n keys. n == 0 yields a filter that
// answers "absent" for everything.
func newBloomFilter(n int, bitsPerKey int) *bloomFilter {
	if bitsPerKey <= 0 {
		bitsPerKey = bloomBitsPerKey
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	k := uint32(math.Round(float64(bitsPerKey) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), k: k}
}

// fnv64a is inlined (rather than hash/fnv) to avoid an allocation per probe.
func fnv64a(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func (f *bloomFilter) add(key []byte) {
	h := fnv64a(key)
	h1, h2 := uint32(h), uint32(h>>32)|1 // odd h2 cycles all positions
	nbits := uint32(len(f.bits)) * 8
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + i*h2) % nbits
		f.bits[pos/8] |= 1 << (pos % 8)
	}
}

// mayContain reports whether key could be in the set. False negatives are
// impossible; false positives happen at roughly the configured rate.
func (f *bloomFilter) mayContain(key []byte) bool {
	if f == nil || len(f.bits) == 0 {
		return false
	}
	h := fnv64a(key)
	h1, h2 := uint32(h), uint32(h>>32)|1
	nbits := uint32(len(f.bits)) * 8
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + i*h2) % nbits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal encodes the filter as [4] k, [4] bit-array byte length, bytes.
func (f *bloomFilter) marshal() []byte {
	out := make([]byte, 0, 8+len(f.bits))
	out = binary.LittleEndian.AppendUint32(out, f.k)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.bits)))
	return append(out, f.bits...)
}

func unmarshalBloom(raw []byte) (*bloomFilter, error) {
	if len(raw) < 8 {
		return nil, errors.New("store: bloom block truncated")
	}
	k := binary.LittleEndian.Uint32(raw[0:4])
	blen := binary.LittleEndian.Uint32(raw[4:8])
	if k == 0 || k > 16 || uint32(len(raw)-8) < blen || blen == 0 {
		return nil, errors.New("store: bloom block malformed")
	}
	bits := make([]byte, blen)
	copy(bits, raw[8:8+blen])
	return &bloomFilter{bits: bits, k: k}, nil
}
