package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeRawWALRecord appends one CRC-framed record with the given payload to
// the file, using the same framing writeRecord produces.
func writeRawWALRecord(t *testing.T, f *os.File, payload []byte) {
	t.Helper()
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(header[4:8], uint32(len(payload)))
	if _, err := f.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
}

// legacyPutPayload builds a pre-LSN (rev 1) single-put record payload.
func legacyPutPayload(key, value []byte) []byte {
	buf := []byte{opPut}
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(value)))
	return append(buf, value...)
}

// legacyBatchPayload builds a pre-LSN (rev 1) opBatch record payload.
func legacyBatchPayload(entries []walEntry) []byte {
	buf := []byte{opBatch}
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendWALSubEntry(buf, e)
	}
	return buf
}

func TestAppliedLSNMonotone(t *testing.T) {
	db, dir := openTemp(t, Options{})
	if got := db.AppliedLSN(); got != 0 {
		t.Fatalf("fresh store AppliedLSN = %d, want 0", got)
	}
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	b := &WriteBatch{}
	b.Put([]byte("b"), []byte("2"))
	b.Put([]byte("c"), []byte("3"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := db.AppliedLSN(); got != 3 {
		t.Fatalf("AppliedLSN = %d, want 3 (put, delete, batch)", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.AppliedLSN(); got != 3 {
		t.Fatalf("AppliedLSN after reopen = %d, want 3", got)
	}
	if err := db2.Put([]byte("d"), []byte("4")); err != nil {
		t.Fatal(err)
	}
	if got := db2.AppliedLSN(); got != 4 {
		t.Fatalf("AppliedLSN after reopen+put = %d, want 4", got)
	}
}

func TestApplyAllAssignsSequentialLSNs(t *testing.T) {
	db, _ := openTemp(t, Options{})
	var batches []*WriteBatch
	for i := 0; i < 3; i++ {
		b := &WriteBatch{}
		b.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
		batches = append(batches, b)
	}
	if err := db.ApplyAll(batches); err != nil {
		t.Fatal(err)
	}
	if got := db.AppliedLSN(); got != 3 {
		t.Fatalf("AppliedLSN = %d, want 3", got)
	}
	tail, err := db.TailLog(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for i := 0; i < 3; i++ {
		rec, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
		if len(rec.Entries) != 1 || string(rec.Entries[0].Key) != fmt.Sprintf("k%d", i) {
			t.Fatalf("record %d entries = %+v", i, rec.Entries)
		}
	}
}

func TestLegacyLogMigration(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft a rev-1 log: two single-op records and one opBatch group,
	// exactly what a pre-replication build would have left behind.
	f, err := os.Create(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	writeRawWALRecord(t, f, legacyPutPayload([]byte("a"), []byte("1")))
	writeRawWALRecord(t, f, legacyPutPayload([]byte("b"), []byte("2")))
	writeRawWALRecord(t, f, legacyBatchPayload([]walEntry{
		{key: []byte("c"), value: []byte("3")},
		{key: []byte("a"), tombstone: true},
	}))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.AppliedLSN(); got != 3 {
		t.Fatalf("migrated AppliedLSN = %d, want 3", got)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstoned key survived migration: %v", err)
	}
	for k, want := range map[string]string{"b": "2", "c": "3"} {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	// Open normalizes the file in place: every record on disk is now rev 2,
	// so a tail can stream the pre-migration history with assigned LSNs.
	tail, err := db.TailLog(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	var lsns []uint64
	for i := 0; i < 3; i++ {
		rec, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, rec.LSN)
	}
	if lsns[0] != 1 || lsns[1] != 2 || lsns[2] != 3 {
		t.Fatalf("migrated LSNs = %v", lsns)
	}
	// No stray migrate temp file once Open returns.
	if _, err := os.Stat(filepath.Join(dir, "wal.log.migrate")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("migrate temp file left behind: %v", err)
	}
	// A second reopen must see the same sequence (migration is idempotent).
	if err := db.Put([]byte("d"), []byte("4")); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.AppliedLSN(); got != 4 {
		t.Fatalf("AppliedLSN after migration+reopen = %d, want 4", got)
	}
}

func TestWALDiscardedBytesSurfaced(t *testing.T) {
	db, dir := openTemp(t, Options{})
	for i := 0; i < 4; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("x"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn write: append a valid-looking header plus a short payload.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x20, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := db2.Stats()
	if st.WALDiscardedBytes != int64(len(garbage)) {
		t.Fatalf("WALDiscardedBytes = %d, want %d", st.WALDiscardedBytes, len(garbage))
	}
	if st.AppliedLSN != 4 {
		t.Fatalf("AppliedLSN = %d, want 4 (valid prefix intact)", st.AppliedLSN)
	}
	// The counter describes the open, not history: a clean reopen resets it.
	db2.Close()
	db3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := db3.Stats().WALDiscardedBytes; got != 0 {
		t.Fatalf("WALDiscardedBytes after clean reopen = %d, want 0", got)
	}
}

func TestTailLogLiveStreaming(t *testing.T) {
	db, _ := openTemp(t, Options{})
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	tail, err := db.TailLog(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	rec, err := tail.Next()
	if err != nil || rec.LSN != 1 {
		t.Fatalf("Next = %+v, %v", rec, err)
	}

	// Next must block until a commit lands, then deliver it.
	type result struct {
		rec LogRecord
		err error
	}
	got := make(chan result, 1)
	go func() {
		r, err := tail.Next()
		got <- result{r, err}
	}()
	select {
	case r := <-got:
		t.Fatalf("Next returned before commit: %+v, %v", r.rec, r.err)
	case <-time.After(20 * time.Millisecond):
	}
	b := &WriteBatch{}
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	b.SetAnnotation([]byte("wave-meta"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.rec.LSN != 2 {
			t.Fatalf("live record LSN = %d, want 2", r.rec.LSN)
		}
		if string(r.rec.Annotation) != "wave-meta" {
			t.Fatalf("annotation = %q", r.rec.Annotation)
		}
		if len(r.rec.Entries) != 2 || !r.rec.Entries[1].Tombstone {
			t.Fatalf("entries = %+v", r.rec.Entries)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on commit")
	}
}

func TestTailLogCloseUnblocks(t *testing.T) {
	db, _ := openTemp(t, Options{})
	tail, err := db.TailLog(1)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := tail.Next()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tail.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrTailClosed) {
			t.Fatalf("Next after Close = %v, want ErrTailClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
}

func TestTailLogAcrossSealedHistory(t *testing.T) {
	// Tiny memtable so every few writes seal the WAL into history; a tail
	// from 1 must stitch sealed files and the active log into one stream.
	db, _ := openTemp(t, Options{MemtableBytes: 256, LogRetainBytes: 1 << 20})
	const n = 24
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("v"), 48)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().WALSealedFiles == 0 {
		t.Fatal("expected at least one sealed WAL file")
	}
	tail, err := db.TailLog(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for i := 0; i < n; i++ {
		rec, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
		if want := fmt.Sprintf("k%02d", i); string(rec.Entries[0].Key) != want {
			t.Fatalf("record %d key = %q, want %q", i, rec.Entries[0].Key, want)
		}
	}
}

func TestTailLogSurvivesReopen(t *testing.T) {
	// Sealed history is on disk: a reopened store can still serve the full
	// tail, which is what lets a follower resume after a leader restart.
	db, dir := openTemp(t, Options{MemtableBytes: 256})
	const n = 16
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("v"), 48)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	db2, err := Open(dir, Options{MemtableBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.AppliedLSN(); got != n {
		t.Fatalf("AppliedLSN after reopen = %d, want %d", got, n)
	}
	if floor := db2.LogFloor(); floor != 1 {
		t.Fatalf("LogFloor after reopen = %d, want 1", floor)
	}
	tail, err := db2.TailLog(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for i := 0; i < n; i++ {
		rec, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
}

func TestLogRetentionCompactsFloor(t *testing.T) {
	// A 1-byte budget prunes every sealed file but the newest; tails from
	// position 1 must then fail with ErrLogCompacted, and the floor must be
	// consistent between LogFloor, Stats, and TailLog's acceptance.
	db, _ := openTemp(t, Options{MemtableBytes: 256, LogRetainBytes: 1})
	for i := 0; i < 32; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("v"), 48)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.WALSealedFiles != 1 {
		t.Fatalf("WALSealedFiles = %d, want 1 (all but newest pruned)", st.WALSealedFiles)
	}
	floor := db.LogFloor()
	if floor <= 1 {
		t.Fatalf("LogFloor = %d, want > 1 after pruning", floor)
	}
	if st.LogFloorLSN != floor {
		t.Fatalf("Stats.LogFloorLSN = %d, LogFloor = %d", st.LogFloorLSN, floor)
	}
	if _, err := db.TailLog(1); !errors.Is(err, ErrLogCompacted) {
		t.Fatalf("TailLog(1) = %v, want ErrLogCompacted", err)
	}
	tail, err := db.TailLog(floor)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	rec, err := tail.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.LSN != floor {
		t.Fatalf("first record from floor = %d, want %d", rec.LSN, floor)
	}
}

func TestSnapshotRestoreAndReplicatedApply(t *testing.T) {
	leader, _ := openTemp(t, Options{})
	for i := 0; i < 10; i++ {
		if err := leader.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Delete([]byte("k03")); err != nil {
		t.Fatal(err)
	}

	pairs, snapLSN, err := leader.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapLSN != leader.AppliedLSN() {
		t.Fatalf("SnapshotLSN = %d, AppliedLSN = %d", snapLSN, leader.AppliedLSN())
	}
	for _, p := range pairs {
		if string(p.Key) == "k03" {
			t.Fatal("tombstoned key exported in snapshot")
		}
	}

	followerDir := t.TempDir()
	follower, err := Open(followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if err := follower.RestoreSnapshot(pairs, snapLSN); err != nil {
		t.Fatal(err)
	}
	if got := follower.AppliedLSN(); got != snapLSN {
		t.Fatalf("follower AppliedLSN = %d, want %d", got, snapLSN)
	}

	// Writes past the snapshot ship through the tail and apply with the
	// leader's LSNs.
	b := &WriteBatch{}
	b.Put([]byte("k10"), []byte("v10"))
	b.Delete([]byte("k00"))
	b.SetAnnotation([]byte("post-snap"))
	if err := leader.Apply(b); err != nil {
		t.Fatal(err)
	}
	tail, err := leader.TailLog(snapLSN + 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	rec, err := tail.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Annotation) != "post-snap" {
		t.Fatalf("shipped annotation = %q", rec.Annotation)
	}
	// A gap must be rejected before the contiguous record lands.
	if err := follower.ApplyReplicated(rec.LSN+1, nil, rec.Entries); err == nil {
		t.Fatal("ApplyReplicated accepted a gapped LSN")
	}
	if err := follower.ApplyReplicated(rec.LSN, rec.Annotation, rec.Entries); err != nil {
		t.Fatal(err)
	}
	if got := follower.AppliedLSN(); got != rec.LSN {
		t.Fatalf("follower AppliedLSN = %d, want %d", got, rec.LSN)
	}
	// Replaying the same record again must also be rejected (idempotence is
	// the caller's job; the store enforces exact contiguity).
	if err := follower.ApplyReplicated(rec.LSN, rec.Annotation, rec.Entries); err == nil {
		t.Fatal("ApplyReplicated accepted a duplicate LSN")
	}

	assertConverged(t, leader, follower)

	// A follower restart recovers the replicated state from its own log.
	follower.Close()
	follower2, err := Open(followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower2.Close()
	if got := follower2.AppliedLSN(); got != rec.LSN {
		t.Fatalf("follower AppliedLSN after reopen = %d, want %d", got, rec.LSN)
	}
	assertConverged(t, leader, follower2)
}

// assertConverged checks the two stores hold byte-identical live key spaces.
func assertConverged(t *testing.T, a, b *DB) {
	t.Helper()
	ap, alsn, err := a.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	bp, blsn, err := b.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if alsn != blsn {
		t.Fatalf("snapshot LSNs diverge: %d vs %d", alsn, blsn)
	}
	if len(ap) != len(bp) {
		t.Fatalf("key counts diverge: %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if !bytes.Equal(ap[i].Key, bp[i].Key) || !bytes.Equal(ap[i].Value, bp[i].Value) {
			t.Fatalf("pair %d diverges: %q=%q vs %q=%q", i, ap[i].Key, ap[i].Value, bp[i].Key, bp[i].Value)
		}
	}
}

func TestRestoreSnapshotRejectsRewind(t *testing.T) {
	db, _ := openTemp(t, Options{})
	for i := 0; i < 5; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	err := db.RestoreSnapshot([]LogEntry{{Key: []byte("x"), Value: []byte("y")}}, 2)
	if err == nil {
		t.Fatal("RestoreSnapshot accepted a snapshot behind the applied LSN")
	}
}

func TestRestoreSnapshotChunksLargeState(t *testing.T) {
	// Enough bytes to force several restoreChunkBytes-sized records; the
	// restore must still land every pair and a reopen must recover them.
	src, _ := openTemp(t, Options{})
	val := bytes.Repeat([]byte("x"), 64<<10)
	const n = 70 // ~4.4 MiB > 2 chunks
	for i := 0; i < n; i++ {
		if err := src.Put([]byte(fmt.Sprintf("big%03d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	pairs, snapLSN, err := src.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	dstDir := t.TempDir()
	dst, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreSnapshot(pairs, snapLSN); err != nil {
		t.Fatal(err)
	}
	dst.Close()
	dst2, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst2.Close()
	if got := dst2.AppliedLSN(); got != snapLSN {
		t.Fatalf("AppliedLSN after restore+reopen = %d, want %d", got, snapLSN)
	}
	for i := 0; i < n; i++ {
		v, err := dst2.Get([]byte(fmt.Sprintf("big%03d", i)))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("restored key big%03d: len=%d err=%v", i, len(v), err)
		}
	}
}
