package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultOps simulates filesystem failures on specific operations, in the
// style of a DirectIO test fake: each knob fails the Nth matching call
// (1-based) and passes the rest through to the real filesystem. Segment
// and WAL faults count separately, so a test can fail a WAL write without
// having to predict how many segment writes preceded it.
type faultOps struct {
	real osFileOps

	failCreateAt int // fail the Nth Create
	failWriteAt  int // fail the Nth Write on created segment files
	failSyncAt   int // fail the Nth Sync on created segment files
	failRenameAt int // fail the Nth Rename

	failWALWriteAt int // fail the Nth Write on the WAL
	failWALSyncAt  int // fail the Nth Sync on the WAL

	creates, writes, syncs, renames int
	walWrites, walSyncs             int
}

var errInjected = errors.New("injected fault")

func (f *faultOps) Create(name string) (SegFile, error) {
	f.creates++
	if f.creates == f.failCreateAt {
		return nil, fmt.Errorf("create %s: %w", name, errInjected)
	}
	file, err := f.real.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, file: file}, nil
}

func (f *faultOps) Rename(oldpath, newpath string) error {
	f.renames++
	if f.renames == f.failRenameAt {
		return fmt.Errorf("rename %s: %w", newpath, errInjected)
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *faultOps) Remove(name string) error { return f.real.Remove(name) }

func (f *faultOps) OpenWAL(name string) (WALFile, error) {
	file, err := f.real.OpenWAL(name)
	if err != nil {
		return nil, err
	}
	return &faultWAL{f: f, WALFile: file}, nil
}

// faultWAL intercepts WAL writes and syncs; everything else passes through.
type faultWAL struct {
	f *faultOps
	WALFile
}

func (fw *faultWAL) Write(p []byte) (int, error) {
	fw.f.walWrites++
	if fw.f.walWrites == fw.f.failWALWriteAt {
		return 0, errInjected
	}
	return fw.WALFile.Write(p)
}

func (fw *faultWAL) Sync() error {
	fw.f.walSyncs++
	if fw.f.walSyncs == fw.f.failWALSyncAt {
		return errInjected
	}
	return fw.WALFile.Sync()
}

type faultFile struct {
	f    *faultOps
	file SegFile
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.f.writes++
	if ff.f.writes == ff.f.failWriteAt {
		return 0, errInjected
	}
	return ff.file.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.f.syncs++
	if ff.f.syncs == ff.f.failSyncAt {
		return errInjected
	}
	return ff.file.Sync()
}

func (ff *faultFile) Close() error { return ff.file.Close() }

// openFaulty opens a store whose segment writes go through a faultOps.
// Auto-compaction is off so fault counters stay deterministic.
func openFaulty(t *testing.T, opts Options) (*DB, *faultOps, string) {
	t.Helper()
	opts.DisableAutoCompaction = true
	dir := t.TempDir()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	fo := &faultOps{}
	db.fops = fo
	t.Cleanup(func() {
		db.fops = osFileOps{} // let Close's flush succeed
		db.Close()
	})
	return db, fo, dir
}

func fillMemtable(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// Each fault point of the segment-flush path: the flush must fail loudly,
// leave no half-written segment behind, keep the store serving reads, and —
// because the WAL still owns the data — survive a crash after the failure.
func TestSegmentFlushFaultInjection(t *testing.T) {
	cases := []struct {
		name string
		set  func(*faultOps)
	}{
		{"create", func(f *faultOps) { f.failCreateAt = 1 }},
		{"first write", func(f *faultOps) { f.failWriteAt = 1 }},
		// The segment writer buffers 256 KiB; with small records the magic,
		// records, index, bloom and tail all land in the first flush. The
		// second write is the CRC trailer.
		{"crc write", func(f *faultOps) { f.failWriteAt = 2 }},
		{"sync", func(f *faultOps) { f.failSyncAt = 1 }},
		{"rename", func(f *faultOps) { f.failRenameAt = 1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db, fo, dir := openFaulty(t, Options{})
			fillMemtable(t, db, 50)
			c.set(fo)

			if err := db.Flush(); !errors.Is(err, errInjected) {
				t.Fatalf("flush error = %v, want injected fault", err)
			}
			if db.SegmentCount() != 0 {
				t.Fatal("failed flush registered a segment")
			}
			leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
			if len(leftovers) != 0 {
				t.Fatalf("temp files left behind: %v", leftovers)
			}
			// Store still serves the data from the memtable.
			v, err := db.Get([]byte("k0007"))
			if err != nil || string(v) != "v7" {
				t.Fatalf("read after failed flush: %q %v", v, err)
			}
			// Retry with the fault cleared succeeds.
			*fo = faultOps{}
			if err := db.Flush(); err != nil {
				t.Fatalf("retry flush: %v", err)
			}
			if db.SegmentCount() != 1 {
				t.Fatalf("retry made %d segments", db.SegmentCount())
			}
		})
	}
}

// TestFailedFlushThenCrashLosesNothing is the durability half: a flush that
// dies on storage errors leaves the WAL intact, so a subsequent crash and
// reopen recovers every acknowledged write.
func TestFailedFlushThenCrashLosesNothing(t *testing.T) {
	db, fo, dir := openFaulty(t, Options{})
	fillMemtable(t, db, 50)
	fo.failWriteAt = 1
	if err := db.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("flush error = %v", err)
	}
	db.Sync()
	db.wal.f.Close() // crash

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, err := db2.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s after crash: %q %v", k, v, err)
		}
	}
}

// TestBackgroundCompactionSurfacesFaults points the compactor at a failing
// filesystem and checks the failure is reported, the store keeps working,
// and the next healthy cycle recovers.
func TestBackgroundCompactionSurfacesFaults(t *testing.T) {
	db, fo, _ := openFaulty(t, Options{})
	// Build four small segments through the healthy path.
	for i := 0; i < 4; i++ {
		if err := db.Put([]byte(fmt.Sprintf("seg%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	db.opts.CompactMinRun = 2

	*fo = faultOps{failWriteAt: 1}
	if db.compactOnce() {
		t.Fatal("compactOnce claimed success under injected fault")
	}
	if err := db.CompactionError(); !errors.Is(err, errInjected) {
		t.Fatalf("CompactionError = %v, want injected", err)
	}
	if db.SegmentCount() != 4 {
		t.Fatalf("failed merge changed segment list: %d", db.SegmentCount())
	}

	*fo = faultOps{}
	if !db.compactOnce() {
		t.Fatal("healthy retry did not compact")
	}
	if err := db.CompactionError(); err != nil {
		t.Fatalf("CompactionError not cleared: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("seg%d", i))); err != nil {
			t.Fatalf("seg%d: %v", i, err)
		}
	}
}

// writeSegmentV1 emits the legacy SPASEG01 format (no bloom block, 12-byte
// tail) for compatibility tests.
func writeSegmentV1(t *testing.T, path string, entries []entry) {
	t.Helper()
	h := crc32.New(castagnoli)
	var buf bytes.Buffer
	w := func(p []byte) {
		buf.Write(p)
		h.Write(p)
	}
	w([]byte(segMagicV1))
	var offset int64
	var ibuf []byte
	var icount uint32
	for i, e := range entries {
		rec := encodeRecord(e)
		if i%indexStride == 0 {
			icount++
			ibuf = binary.AppendUvarint(ibuf, uint64(len(e.key)))
			ibuf = append(ibuf, e.key...)
			ibuf = binary.LittleEndian.AppendUint64(ibuf, uint64(offset))
		}
		w(rec)
		offset += int64(len(rec))
	}
	var iblk []byte
	iblk = binary.LittleEndian.AppendUint32(iblk, icount)
	iblk = append(iblk, ibuf...)
	w(iblk)
	var tail [12]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(offset))
	binary.LittleEndian.PutUint32(tail[8:12], uint32(len(entries)))
	w(tail[:])
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], h.Sum32())
	buf.Write(crcBuf[:])
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, ".dat") {
		t.Fatalf("v1 segment path %s will not be loaded by loadSegments", path)
	}
}
