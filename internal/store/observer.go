package store

import (
	"sync/atomic"
	"time"
)

// Observer receives engine-level timing callbacks — the store's half of the
// serving layer's stage-latency instrumentation. It is a seam, not a
// dependency: the store knows nothing about histograms or metric names;
// the serving layer installs an adapter that records into its own.
//
// Callbacks may run while the engine holds internal locks (a WAL sync
// happens under the store mutex) and on background goroutines (the
// compactor), so implementations must be fast, non-blocking, and must not
// call back into the DB.
type Observer interface {
	// WALSync reports one WAL durability point (buffer flush + fsync) and
	// its duration. wave is the serving-layer wave tag when the sync
	// belongs to a group commit applied via ApplyAllTagged, zero for every
	// other sync (per-mutation syncEvery syncs, explicit Sync calls).
	WALSync(wave uint64, d time.Duration)
	// Compaction reports one completed merge attempt — a background tier
	// merge or a forced Compact — with its duration and failure, if any.
	// Stale-abort attempts (the merged run was replaced mid-merge) report
	// a nil error like successful ones; they did the work either way.
	Compaction(d time.Duration, err error)
}

// SetObserver installs (or, with nil, removes) the engine observer. Safe
// to call on a live DB; the swap is atomic and in-flight operations use
// whichever observer they loaded.
func (db *DB) SetObserver(o Observer) {
	if o == nil {
		db.obs.Store(nil)
		return
	}
	db.obs.Store(&o)
}

// observer returns the installed observer, or nil.
func (db *DB) observer() Observer {
	if p := db.obs.Load(); p != nil {
		return *p
	}
	return nil
}

// noteCompaction reports one merge attempt to the observer, if installed.
func (db *DB) noteCompaction(d time.Duration, err error) {
	if o := db.observer(); o != nil {
		o.Compaction(d, err)
	}
}

// obsPtr is the DB field type (declared here with its accessors).
type obsPtr = atomic.Pointer[Observer]
