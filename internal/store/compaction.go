package store

import (
	"fmt"
	"time"
)

// Background size-tiered compaction.
//
// Flushes produce many small segments; every point lookup consults each one
// (bloom filters soften but do not remove the cost), so the compactor
// continuously merges runs of similar-sized segments into bigger ones. The
// policy and its safety argument:
//
//   - Only contiguous SUFFIX runs of the segment list are merged. The merged
//     segment takes a fresh id (greater than every run member, smaller than
//     any segment flushed after the merge started), so both the in-memory
//     splice and the id-sorted order after a reopen put it in exactly the
//     run's position.
//   - Tombstones are dropped only when the run covers the whole list; a
//     tombstone merged out of a mid-list run could otherwise stop shadowing
//     a put in an older segment.
//   - The merge output is written under a ".merge" name that loadSegments
//     ignores, and only renamed to "seg-*.dat" inside the splice's critical
//     section, once the run is re-verified live. A crash before that
//     rename (or on the stale-abort path) leaves nothing a reopen would
//     load.
//   - Old run files are removed oldest-first after the merged file is
//     durable. A crash at any point leaves a file set that reloads
//     correctly: surviving run members are older than the merged segment
//     (which contains their merged content), so the merged segment shadows
//     them, and any shadowing relation among survivors is intact.
//
// The merge itself runs without holding the store lock — segments are
// immutable and fully memory-resident — and the splice re-verifies by
// pointer identity that the run is still live, aborting (and deleting its
// output) if a concurrent forced Compact replaced the world.

// compactLoop is the background goroutine: it wakes on every flush and on a
// slow poll tick, and exits when Close signals.
func (db *DB) compactLoop() {
	defer db.wg.Done()
	ticker := time.NewTicker(db.opts.CompactInterval)
	defer ticker.Stop()
	for {
		select {
		case <-db.closeCh:
			return
		case <-db.compactKick:
		case <-ticker.C:
		}
		// Drain all eligible runs before sleeping again: one merge can make
		// the next run eligible (tier cascade).
		for db.compactOnce() {
			select {
			case <-db.closeCh:
				return
			default:
			}
		}
	}
}

// compactOnce performs at most one tiered merge. It reports whether it
// changed the segment list (so the caller can immediately look for a
// cascading merge).
func (db *DB) compactOnce() bool {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return false
	}
	snapshot := append([]*segment(nil), db.segments...)
	start := pickCompactRun(snapshot, db.opts.CompactMinRun, db.opts.CompactRatio)
	if start < 0 {
		db.mu.Unlock()
		return false
	}
	id := db.nextSeg
	db.nextSeg++
	db.mu.Unlock()

	t0 := time.Now()
	changed, err := db.mergeRun(snapshot[start:], start == 0, id)
	db.noteCompaction(time.Since(t0), err)
	return changed
}

// mergeRun performs one picked tiered merge: merge off-lock, install under
// the lock, remove the replaced files. The returned error is this
// attempt's failure (also recorded via setCompactErr); a stale abort is
// not a failure.
func (db *DB) mergeRun(run []*segment, dropTombs bool, id uint64) (bool, error) {
	merged, err := mergeSegments(run, dropTombs)
	if err != nil {
		db.setCompactErr(err)
		return false, err
	}
	// Write the merge output under a name loadSegments ignores. It only
	// becomes a real segment by the rename below, inside the splice's
	// critical section — so a crash at any earlier point (including the
	// stale-abort path) leaves no file that could shadow or resurrect
	// anything on reopen.
	path := segmentPath(db.dir, id)
	pending := path + ".merge"
	if err := writeSegment(db.fops, pending, merged); err != nil {
		db.setCompactErr(err)
		return false, err
	}
	seg, err := openSegment(pending, id)
	if err != nil {
		db.fops.Remove(pending)
		db.setCompactErr(err)
		return false, err
	}

	db.mu.Lock()
	idx, live := findRun(db.segments, run)
	if db.closed || !live || (dropTombs && idx != 0) {
		// A forced Compact (or Close) rewrote the world while we merged;
		// our output is stale. Drop it.
		db.mu.Unlock()
		db.fops.Remove(pending)
		return false, nil
	}
	if err := db.fops.Rename(pending, path); err != nil {
		db.mu.Unlock()
		db.fops.Remove(pending)
		db.setCompactErr(err)
		return false, err
	}
	seg.path = path
	newSegs := make([]*segment, 0, idx+1+len(db.segments)-(idx+len(run)))
	newSegs = append(newSegs, db.segments[:idx]...)
	newSegs = append(newSegs, seg)
	newSegs = append(newSegs, db.segments[idx+len(run):]...)
	db.segments = newSegs
	db.compactErr = nil
	db.compactions++
	db.mu.Unlock()

	// Old files are unreachable for new readers; in-flight iterators hold
	// the in-memory record blocks. Remove oldest-first for crash safety.
	for _, s := range run {
		s.close()
		if err := db.fops.Remove(s.path); err != nil {
			err = fmt.Errorf("store: removing compacted segment: %w", err)
			db.setCompactErr(err)
			return true, err
		}
	}
	return true, nil
}

func (db *DB) setCompactErr(err error) {
	db.mu.Lock()
	db.compactErr = err
	db.mu.Unlock()
}

// pickCompactRun returns the start index of the suffix run to merge, or -1.
// Walking back from the newest segment, an older segment joins the run
// while its size is at most ratio times the bytes already in the run — the
// classic tiered policy: fresh small flushes merge constantly, a big old
// segment only joins once the tail has grown to its order of magnitude.
func pickCompactRun(segs []*segment, minRun int, ratio float64) int {
	n := len(segs)
	if n < minRun {
		return -1
	}
	runBytes := segs[n-1].size
	start := n - 1
	for i := n - 2; i >= 0; i-- {
		if float64(segs[i].size) > ratio*float64(runBytes) {
			break
		}
		runBytes += segs[i].size
		start = i
	}
	if n-start < minRun {
		return -1
	}
	return start
}

// findRun locates run inside segs by pointer identity, returning the start
// index and whether the whole run is present contiguously.
func findRun(segs []*segment, run []*segment) (int, bool) {
	if len(run) == 0 {
		return -1, false
	}
	for i := 0; i+len(run) <= len(segs); i++ {
		if segs[i] != run[0] {
			continue
		}
		match := true
		for j := 1; j < len(run); j++ {
			if segs[i+j] != run[j] {
				match = false
				break
			}
		}
		if match {
			return i, true
		}
	}
	return -1, false
}
