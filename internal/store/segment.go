package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// Segment file format, version 2 (all integers little-endian):
//
//	[8]  magic "SPASEG02"
//	records, each:
//	  [1] op (0 = put, 1 = tombstone)
//	  [uvarint] key length, key bytes
//	  [uvarint] value length, value bytes (puts only)
//	footer:
//	  sparse index: [4] count, then count × { [uvarint] keyLen, key, [8] offset }
//	  bloom block: [4] hash count k, [4] bit-array byte length, bytes
//	  [8] index offset  [8] bloom offset  [4] record count
//	  [4] crc32 of the whole file up to here
//
// Records are sorted by key. The sparse index holds every indexStride-th
// key so point lookups seek near the target and scan at most a stride; the
// bloom filter lets point lookups skip segments that cannot hold the key
// at all. Version-1 files (no bloom block, 12-byte tail) are still read —
// their filter is rebuilt from the record block on open.
const (
	segMagic   = "SPASEG02"
	segMagicV1 = "SPASEG01"

	indexStride = 16
)

// segment is an immutable sorted file. Reads are served from a fully loaded
// in-memory copy of the record block — profile values are small and campaign
// scans touch everything anyway, so mmap-style paging buys nothing here.
type segment struct {
	path   string
	id     uint64
	data   []byte // record block (after magic)
	index  []indexEntry
	filter *bloomFilter
	count  int
	size   int64 // on-disk size, drives tiered compaction
}

type indexEntry struct {
	key    []byte
	offset int64 // into data
}

// writeSegment writes sorted entries to a new file at path via fops. The
// caller guarantees key order; writeSegment verifies it and fails otherwise,
// since an unsorted segment would corrupt every future merge.
func writeSegment(fops FileOps, path string, entries []entry) error {
	tmp := path + ".tmp"
	f, err := fops.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	defer fops.Remove(tmp)

	h := crc32.New(castagnoli)
	w := bufio.NewWriterSize(io.MultiWriter(f, h), 256<<10)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	var (
		offset  int64 // into record block
		index   []indexEntry
		prevKey []byte
	)
	filter := newBloomFilter(len(entries), bloomBitsPerKey)
	for i, e := range entries {
		if prevKey != nil && bytes.Compare(prevKey, e.key) >= 0 {
			f.Close()
			return fmt.Errorf("store: entries not strictly sorted at %d", i)
		}
		prevKey = e.key
		filter.add(e.key)
		if i%indexStride == 0 {
			index = append(index, indexEntry{key: append([]byte(nil), e.key...), offset: offset})
		}
		rec := encodeRecord(e)
		if _, err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
		offset += int64(len(rec))
	}
	indexOffset := offset
	var ibuf []byte
	ibuf = binary.LittleEndian.AppendUint32(ibuf, uint32(len(index)))
	for _, ie := range index {
		ibuf = binary.AppendUvarint(ibuf, uint64(len(ie.key)))
		ibuf = append(ibuf, ie.key...)
		ibuf = binary.LittleEndian.AppendUint64(ibuf, uint64(ie.offset))
	}
	if _, err := w.Write(ibuf); err != nil {
		f.Close()
		return err
	}
	bloomOffset := indexOffset + int64(len(ibuf))
	if _, err := w.Write(filter.marshal()); err != nil {
		f.Close()
		return err
	}
	var tail [20]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(indexOffset))
	binary.LittleEndian.PutUint64(tail[8:16], uint64(bloomOffset))
	binary.LittleEndian.PutUint32(tail[16:20], uint32(len(entries)))
	if _, err := w.Write(tail[:]); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], h.Sum32())
	if _, err := f.Write(crcBuf[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fops.Rename(tmp, path)
}

func encodeRecord(e entry) []byte {
	var buf []byte
	if e.tombstone {
		buf = append(buf, opDelete)
		buf = binary.AppendUvarint(buf, uint64(len(e.key)))
		buf = append(buf, e.key...)
		return buf
	}
	buf = append(buf, opPut)
	buf = binary.AppendUvarint(buf, uint64(len(e.key)))
	buf = append(buf, e.key...)
	buf = binary.AppendUvarint(buf, uint64(len(e.value)))
	buf = append(buf, e.value...)
	return buf
}

func openSegment(path string, id uint64) (*segment, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(segMagic)+16 {
		return nil, fmt.Errorf("store: segment %s too short", path)
	}
	var v1 bool
	switch string(raw[:len(segMagic)]) {
	case segMagic:
	case segMagicV1:
		v1 = true
	default:
		return nil, fmt.Errorf("store: segment %s has bad magic", path)
	}
	body := raw[:len(raw)-4]
	wantCRC := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, fmt.Errorf("store: segment %s failed checksum", path)
	}
	tailLen := 20
	if v1 {
		tailLen = 12
	}
	if len(body) < len(segMagic)+tailLen {
		return nil, fmt.Errorf("store: segment %s too short", path)
	}
	tail := body[len(body)-tailLen:]
	indexOffset := int64(binary.LittleEndian.Uint64(tail[0:8]))
	var bloomOffset int64
	var count int
	if v1 {
		count = int(binary.LittleEndian.Uint32(tail[8:12]))
	} else {
		bloomOffset = int64(binary.LittleEndian.Uint64(tail[8:16]))
		count = int(binary.LittleEndian.Uint32(tail[16:20]))
	}
	data := body[len(segMagic) : len(body)-tailLen]
	if indexOffset < 0 || indexOffset > int64(len(data)) {
		return nil, fmt.Errorf("store: segment %s has bad index offset", path)
	}
	iraw := data[indexOffset:]
	records := data[:indexOffset]
	if !v1 {
		if bloomOffset < indexOffset || bloomOffset > int64(len(data)) {
			return nil, fmt.Errorf("store: segment %s has bad bloom offset", path)
		}
		iraw = data[indexOffset:bloomOffset]
	}
	if len(iraw) < 4 {
		return nil, fmt.Errorf("store: segment %s index truncated", path)
	}
	icount := int(binary.LittleEndian.Uint32(iraw[:4]))
	iraw = iraw[4:]
	index := make([]indexEntry, 0, icount)
	for i := 0; i < icount; i++ {
		klen, n := binary.Uvarint(iraw)
		if n <= 0 || uint64(len(iraw)-n) < klen+8 {
			return nil, fmt.Errorf("store: segment %s index entry %d truncated", path, i)
		}
		iraw = iraw[n:]
		key := iraw[:klen]
		iraw = iraw[klen:]
		off := int64(binary.LittleEndian.Uint64(iraw[:8]))
		iraw = iraw[8:]
		index = append(index, indexEntry{key: key, offset: off})
	}
	s := &segment{
		path:  path,
		id:    id,
		data:  records,
		index: index,
		count: count,
		size:  int64(len(raw)),
	}
	if v1 {
		if err := s.rebuildFilter(); err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", path, err)
		}
	} else {
		f, err := unmarshalBloom(data[bloomOffset:])
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", path, err)
		}
		s.filter = f
	}
	return s, nil
}

// rebuildFilter scans the record block and constructs the bloom filter a
// version-1 segment never persisted.
func (s *segment) rebuildFilter() error {
	s.filter = newBloomFilter(s.count, bloomBitsPerKey)
	for pos := int64(0); pos < int64(len(s.data)); {
		e, next, err := decodeRecordAt(s.data, pos)
		if err != nil {
			return err
		}
		s.filter.add(e.key)
		pos = next
	}
	return nil
}

func (s *segment) close() {}

// get performs a point lookup: the bloom filter first (a negative proves
// absence, skipping the segment entirely), then the sparse index.
func (s *segment) get(key []byte) (value []byte, tombstone, ok bool, err error) {
	if len(s.index) == 0 {
		return nil, false, false, nil
	}
	if !s.filter.mayContain(key) {
		return nil, false, false, nil
	}
	// Find the last index entry with key <= target.
	i := sort.Search(len(s.index), func(i int) bool {
		return bytes.Compare(s.index[i].key, key) > 0
	}) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	pos := s.index[i].offset
	var end int64
	if i+1 < len(s.index) {
		end = s.index[i+1].offset
	} else {
		end = int64(len(s.data))
	}
	for pos < end {
		e, next, derr := decodeRecordAt(s.data, pos)
		if derr != nil {
			return nil, false, false, derr
		}
		switch bytes.Compare(e.key, key) {
		case 0:
			return append([]byte(nil), e.value...), e.tombstone, true, nil
		case 1:
			return nil, false, false, nil
		}
		pos = next
	}
	return nil, false, false, nil
}

func decodeRecordAt(data []byte, pos int64) (entry, int64, error) {
	if pos >= int64(len(data)) {
		return entry{}, 0, errors.New("store: record offset past end")
	}
	p := data[pos:]
	op := p[0]
	p = p[1:]
	consumed := int64(1)
	klen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < klen {
		return entry{}, 0, errors.New("store: bad record key")
	}
	p = p[n:]
	consumed += int64(n)
	key := p[:klen]
	p = p[klen:]
	consumed += int64(klen)
	if op == opDelete {
		return entry{key: key, tombstone: true}, pos + consumed, nil
	}
	vlen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < vlen {
		return entry{}, 0, errors.New("store: bad record value")
	}
	p = p[n:]
	consumed += int64(n)
	value := p[:vlen]
	consumed += int64(vlen)
	return entry{key: key, value: value}, pos + consumed, nil
}

// segIter iterates records in [start, end).
type segIter struct {
	s   *segment
	pos int64
	end []byte
}

func (s *segment) iter(start, end []byte) (iterator, error) {
	var pos int64
	if start != nil && len(s.index) > 0 {
		i := sort.Search(len(s.index), func(i int) bool {
			return bytes.Compare(s.index[i].key, start) > 0
		}) - 1
		if i >= 0 {
			pos = s.index[i].offset
		}
		// Advance record-by-record to the first key >= start.
		for pos < int64(len(s.data)) {
			e, next, err := decodeRecordAt(s.data, pos)
			if err != nil {
				return nil, err
			}
			if bytes.Compare(e.key, start) >= 0 {
				break
			}
			pos = next
		}
	}
	return &segIter{s: s, pos: pos, end: end}, nil
}

func (it *segIter) next() (entry, bool) {
	if it.pos >= int64(len(it.s.data)) {
		return entry{}, false
	}
	e, next, err := decodeRecordAt(it.s.data, it.pos)
	if err != nil {
		// Segments are checksummed at open; a decode error here means memory
		// corruption. Treat as exhausted rather than panicking mid-scan.
		it.pos = int64(len(it.s.data))
		return entry{}, false
	}
	if it.end != nil && bytes.Compare(e.key, it.end) >= 0 {
		it.pos = int64(len(it.s.data))
		return entry{}, false
	}
	it.pos = next
	return e, true
}

// mergeSegments produces the compacted, sorted entry list across segments
// (newest wins). Tombstones are dropped only when dropTombstones is set —
// legal solely when segs includes the oldest segment of the store, since a
// dropped tombstone can no longer shadow anything beneath the merged run.
func mergeSegments(segs []*segment, dropTombstones bool) ([]entry, error) {
	sources := make([]iterator, 0, len(segs))
	for i := len(segs) - 1; i >= 0; i-- { // newest first
		it, err := segs[i].iter(nil, nil)
		if err != nil {
			return nil, err
		}
		sources = append(sources, it)
	}
	mi := newMergeIter(sources)
	var out []entry
	for {
		e, ok := mi.next()
		if !ok {
			return out, nil
		}
		if e.tombstone && dropTombstones {
			continue
		}
		out = append(out, entry{
			key:       append([]byte(nil), e.key...),
			value:     append([]byte(nil), e.value...),
			tombstone: e.tombstone,
		})
	}
}
