package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"
)

// aggressive compaction options for tests: tiny memtable, instant polling.
func compactingOpts() Options {
	return Options{
		MemtableBytes:   2 << 10,
		CompactMinRun:   2,
		CompactInterval: 2 * time.Millisecond,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBackgroundCompactionMergesSegments floods the store with flushes and
// waits for the compactor to fold them into a bounded set.
func TestBackgroundCompactionMergesSegments(t *testing.T) {
	db, _ := openTemp(t, compactingOpts())
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("v"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "segments to merge", func() bool { return db.SegmentCount() <= 4 })
	if err := db.CompactionError(); err != nil {
		t.Fatalf("background compaction failed: %v", err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("k%05d lost after compaction: %v", i, err)
		}
	}
}

// TestCompactionConcurrentWithTraffic runs background compaction under a
// randomized put/delete/read workload over a bounded keyspace, then checks
// the three invariants the compactor must preserve: Scan yields strictly
// ascending keys matching a reference model, deleted keys are gone
// (tombstone elimination at the read surface), and every live key is
// Get-able (bloom filters never produce false negatives).
func TestCompactionConcurrentWithTraffic(t *testing.T) {
	db, _ := openTemp(t, compactingOpts())

	const keyspace = 400
	rng := rand.New(rand.NewSource(42))
	model := make(map[string]string) // reference: single writer, no lock needed

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("key-%06d", rng.Intn(keyspace)))
				if _, err := db.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("reader: %v", err)
					return
				}
				prev := []byte(nil)
				db.Scan(nil, nil, func(k, _ []byte) bool {
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						t.Errorf("scan order violated: %q then %q", prev, k)
						return false
					}
					prev = append(prev[:0], k...)
					return true
				})
			}
		}(r)
	}

	for i := 0; i < 6000; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(keyspace))
		if rng.Intn(4) == 0 {
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		} else {
			v := fmt.Sprintf("val-%d", i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	close(stop)
	wg.Wait()

	if err := db.CompactionError(); err != nil {
		t.Fatalf("background compaction failed: %v", err)
	}
	verifyAgainstModel(t, db, model)

	// Force the full merge on top of whatever the background compactor did,
	// then verify again: same contents, one segment, zero tombstones.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.SegmentCount() != 1 {
		t.Fatalf("after forced compact: %d segments", db.SegmentCount())
	}
	verifyAgainstModel(t, db, model)
	assertNoTombstones(t, db)

	// And across a reopen.
	dir := db.dir
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verifyAgainstModel(t, db2, model)
}

func verifyAgainstModel(t *testing.T, db *DB, model map[string]string) {
	t.Helper()
	got := make(map[string]string)
	prev := []byte(nil)
	err := db.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan order violated: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("scan saw %d keys, model has %d", len(got), len(model))
	}
	for k, want := range model {
		if got[k] != want {
			t.Fatalf("key %s: scan %q, model %q", k, got[k], want)
		}
		// Point lookups exercise the bloom path: a false negative would
		// surface as ErrNotFound here.
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s: get %q %v, model %q", k, v, err, want)
		}
	}
}

// assertNoTombstones walks the raw records of every segment and fails on
// any tombstone — physical elimination, not just read-side filtering.
func assertNoTombstones(t *testing.T, db *DB) {
	t.Helper()
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, s := range db.segments {
		for pos := int64(0); pos < int64(len(s.data)); {
			e, next, err := decodeRecordAt(s.data, pos)
			if err != nil {
				t.Fatal(err)
			}
			if e.tombstone {
				t.Fatalf("tombstone for %q survived full compaction", e.key)
			}
			pos = next
		}
	}
}

// TestBackgroundCompactionPreservesMidListTombstones forces a mid-list
// merge (run not covering the oldest segment) and checks the tombstone
// still shadows the older put.
func TestBackgroundCompactionPreservesMidListTombstones(t *testing.T) {
	db, _ := openTemp(t, Options{DisableAutoCompaction: true})
	// Oldest segment: a put that must stay shadowed.
	if err := db.Put([]byte("victim"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Pad the oldest segment so it is too big to join the run.
	if err := db.Put([]byte("pad"), bytes.Repeat([]byte("p"), 8<<10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Two small newer segments, one carrying the tombstone.
	if err := db.Delete([]byte("victim")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("other"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.SegmentCount(); got != 3 {
		t.Fatalf("setup made %d segments", got)
	}

	// Run one compaction cycle by hand: the 8 KiB oldest segment is far
	// beyond ratio×(two tiny segments), so the run is the two newest ones.
	db.opts.CompactMinRun = 2
	db.opts.CompactRatio = 2.0
	if !db.compactOnce() {
		t.Fatal("compactOnce found nothing to merge")
	}
	if got := db.SegmentCount(); got != 2 {
		t.Fatalf("after mid-list merge: %d segments", got)
	}
	if _, err := db.Get([]byte("victim")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone dropped in mid-list merge: %v", err)
	}

	// After a reopen the tombstone must still shadow the old put.
	dir := db.dir
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("victim")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone lost across reopen: %v", err)
	}
}

// TestCloseStopsCompactor closes the store while the compactor has pending
// work; Close must not race, deadlock, or resurrect segment files.
func TestCloseStopsCompactor(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		db, err := Open(dir, compactingOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 32)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := db2.Len()
		if err != nil {
			t.Fatal(err)
		}
		if n != 500 {
			t.Fatalf("round %d: %d keys after close/reopen", round, n)
		}
		db2.Close()
	}
}

// TestForcedCompactDuringBackgroundMerge interleaves manual Compact calls
// with a background compactor under write load — the splice-abort path.
func TestForcedCompactDuringBackgroundMerge(t *testing.T) {
	db, _ := openTemp(t, compactingOpts())
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i%700)), bytes.Repeat([]byte("v"), 24)); err != nil {
			t.Fatal(err)
		}
		if i%500 == 499 {
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	n, err := db.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 700 {
		t.Fatalf("lost keys: %d of 700", n)
	}
}

func TestPickCompactRun(t *testing.T) {
	seg := func(size int64) *segment { return &segment{size: size} }
	cases := []struct {
		name  string
		sizes []int64
		min   int
		ratio float64
		want  int
	}{
		{"too few", []int64{10, 10}, 4, 2, -1},
		{"equal sizes merge all", []int64{10, 10, 10, 10}, 4, 2, 0},
		{"big head excluded", []int64{1000, 10, 10, 10, 10}, 4, 2, 1},
		{"big head joins once tail is comparable", []int64{50, 20, 20, 20, 20}, 4, 2, 0},
		{"run shorter than min", []int64{1000, 1000, 10, 10}, 3, 2, -1},
		{"empty", nil, 4, 2, -1},
	}
	for _, c := range cases {
		segs := make([]*segment, len(c.sizes))
		for i, s := range c.sizes {
			segs[i] = seg(s)
		}
		if got := pickCompactRun(segs, c.min, c.ratio); got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, got, c.want)
		}
	}
}

// errKillPoint marks injected failures in the kill-point sweep.
var errKillPoint = errors.New("injected kill-point")

// killpointOps is a counting cousin of KillableFileOps: the "device" dies
// at the Nth filesystem mutation and stays dead. The count spans WAL
// writes and syncs, segment creates, writes and syncs, renames and
// removes, so a sweep over killAt crosses every stage of a flush and a
// full compaction cycle — including the .merge staging rename and the
// old-segment removals.
type killpointOps struct {
	mu     sync.Mutex
	n      int
	killAt int // 1-based mutation index at which the device dies; 0 = never
}

func (o *killpointOps) step() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.n++
	if o.killAt > 0 && o.n >= o.killAt {
		return errKillPoint
	}
	return nil
}

func (o *killpointOps) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

func (o *killpointOps) Create(name string) (SegFile, error) {
	if err := o.step(); err != nil {
		return nil, err
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return &killpointFile{ops: o, File: f}, nil
}

func (o *killpointOps) Rename(oldpath, newpath string) error {
	if err := o.step(); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func (o *killpointOps) Remove(name string) error {
	if err := o.step(); err != nil {
		return err
	}
	return os.Remove(name)
}

func (o *killpointOps) OpenWAL(name string) (WALFile, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &killpointFile{ops: o, File: f}, nil
}

// killpointFile serves as both SegFile and WALFile: the *os.File supplies
// reads, seeks and truncation; mutations go through the kill-point gate,
// and after the kill no byte reaches the device.
type killpointFile struct {
	ops *killpointOps
	*os.File
}

func (f *killpointFile) Write(p []byte) (int, error) {
	if err := f.ops.step(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *killpointFile) Sync() error {
	if err := f.ops.step(); err != nil {
		return err
	}
	return f.File.Sync()
}

// TestCompactionCrashReplaySweep kills the device at every possible
// filesystem mutation across a scripted workload spanning two full
// compaction cycles, then reopens the directory with clean file ops and
// checks the survivor against a shadow map of acknowledged writes:
// every acked put and delete is durable (fsync acked means recovered),
// the single mutation in flight at the kill may land either way but
// nowhere in between, and forcing a compaction on the survivor changes
// no logical content.
func TestCompactionCrashReplaySweep(t *testing.T) {
	type op struct {
		del     bool
		key     string
		val     string
		flush   bool
		compact bool
	}
	// One fixed script shared by every round, so killAt indexes a stable
	// schedule: 90 mutations over 30 keys with periodic deletes, explicit
	// flushes building multi-segment runs, and two forced compactions.
	var script []op
	pad := string(bytes.Repeat([]byte("x"), 40))
	for i := 0; i < 90; i++ {
		k := fmt.Sprintf("k%03d", i%30)
		if i%9 == 8 {
			script = append(script, op{del: true, key: k})
		} else {
			script = append(script, op{key: k, val: fmt.Sprintf("v%03d-%s", i, pad)})
		}
		if i%30 == 29 {
			script = append(script, op{flush: true})
		}
		if i == 59 || i == 89 {
			script = append(script, op{compact: true})
		}
	}

	// run executes the script until the first injected failure. acked maps
	// key to its last acknowledged value ("" = acknowledged delete);
	// pending is the mutation in flight at the kill, nil when the crash
	// hit a flush or compaction (which change no logical state).
	run := func(dir string, killAt int) (acked map[string]string, pending *op, total int) {
		ops := &killpointOps{killAt: killAt}
		acked = make(map[string]string)
		db, err := Open(dir, Options{
			MemtableBytes:         2 << 10,
			SyncWrites:            true,
			DisableAutoCompaction: true,
			FileOps:               ops,
		})
		if err != nil {
			if killAt == 0 {
				t.Fatalf("dry-run open: %v", err)
			}
			return acked, nil, ops.count()
		}
		for i := range script {
			o := script[i]
			var err error
			switch {
			case o.flush:
				err = db.Flush()
			case o.compact:
				err = db.Compact()
			case o.del:
				err = db.Delete([]byte(o.key))
			default:
				err = db.Put([]byte(o.key), []byte(o.val))
			}
			if err != nil {
				if killAt == 0 {
					t.Fatalf("dry run failed at step %d: %v", i, err)
				}
				if !o.flush && !o.compact {
					pending = &script[i]
				}
				// The device is dead: abandon the instance without Close,
				// as a crash would. No background compactor is running.
				return acked, pending, ops.count()
			}
			if o.del {
				acked[o.key] = ""
			} else if !o.flush && !o.compact {
				acked[o.key] = o.val
			}
		}
		if err := db.Close(); err != nil && killAt == 0 {
			t.Fatal(err)
		}
		return acked, nil, ops.count()
	}

	// Dry run: pin the schedule length and prove the script really crosses
	// compaction (a sweep over a workload that never compacts would pass
	// vacuously).
	dryDir := t.TempDir()
	dryAcked, _, total := run(dryDir, 0)
	if total < 100 {
		t.Fatalf("script too short to cover flush+compaction: %d mutations", total)
	}
	db, err := Open(dryDir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.SegmentCount(); got != 1 {
		t.Fatalf("dry run should end fully compacted, has %d segments", got)
	}
	db.Close()

	verify := func(killAt int, dir string, acked map[string]string, pending *op) {
		db, err := Open(dir, Options{DisableAutoCompaction: true})
		if err != nil {
			t.Fatalf("killAt=%d: recovery open failed: %v", killAt, err)
		}
		defer db.Close()
		check := func(stage string) {
			for k, v := range acked {
				if pending != nil && k == pending.key {
					continue
				}
				got, err := db.Get([]byte(k))
				if v == "" {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("killAt=%d %s: acked delete of %s resurfaced: %q %v", killAt, stage, k, got, err)
					}
				} else if err != nil || string(got) != v {
					t.Fatalf("killAt=%d %s: acked %s=%q, recovered %q %v", killAt, stage, k, v, got, err)
				}
			}
		}
		check("reopen")
		if pending != nil {
			// The in-flight mutation is the one ambiguous key: its WAL
			// record may have become durable before the kill landed. Old
			// state or new state are both legal; anything else is
			// corruption.
			got, err := db.Get([]byte(pending.key))
			old, had := acked[pending.key]
			okOld := (!had || old == "") && errors.Is(err, ErrNotFound) ||
				had && old != "" && err == nil && string(got) == old
			okNew := pending.del && errors.Is(err, ErrNotFound) ||
				!pending.del && err == nil && string(got) == pending.val
			if !okOld && !okNew {
				t.Fatalf("killAt=%d: in-flight %s recovered to %q %v (old %q, new %q del=%v)",
					killAt, pending.key, got, err, old, pending.val, pending.del)
			}
		}
		// Compaction on the survivor is logically a no-op.
		if err := db.Compact(); err != nil {
			t.Fatalf("killAt=%d: compacting survivor: %v", killAt, err)
		}
		check("post-compact")
	}

	for killAt := 1; killAt <= total; killAt++ {
		dir := t.TempDir()
		acked, pending, _ := run(dir, killAt)
		verify(killAt, dir, acked, pending)
	}
	// killAt beyond the schedule: the clean run's shadow map must survive
	// its graceful close too.
	dir := t.TempDir()
	acked, pending, _ := run(dir, total+10)
	if pending != nil {
		t.Fatal("clean run reported an in-flight mutation")
	}
	if len(acked) != len(dryAcked) {
		t.Fatalf("clean run acked %d keys, dry run %d", len(acked), len(dryAcked))
	}
	verify(total+10, dir, acked, nil)
}

// TestSegmentV1Compat writes a version-1 segment by hand (no bloom footer)
// and checks openSegment reads it and rebuilds a working filter.
func TestSegmentV1Compat(t *testing.T) {
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	entries := []entry{
		{key: []byte("alpha"), value: []byte("1")},
		{key: []byte("beta"), tombstone: true},
		{key: []byte("gamma"), value: []byte("3")},
	}
	writeSegmentV1(t, path, entries)

	s, err := openSegment(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.filter == nil {
		t.Fatal("no filter rebuilt for v1 segment")
	}
	for _, e := range entries {
		v, tomb, ok, err := s.get(e.key)
		if err != nil || !ok {
			t.Fatalf("%s: ok=%v err=%v (bloom false negative?)", e.key, ok, err)
		}
		if tomb != e.tombstone || (!tomb && !bytes.Equal(v, e.value)) {
			t.Fatalf("%s: got %q tomb=%v", e.key, v, tomb)
		}
	}

	// A whole store directory of v1 segments opens and serves reads.
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	v, err := db.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("alpha via DB: %q %v", v, err)
	}
	if _, err := db.Get([]byte("beta")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("beta tombstone ignored: %v", err)
	}
}
