package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteBatchBasic(t *testing.T) {
	db, _ := openTemp(t, Options{})
	var b WriteBatch
	b.Put([]byte("u1"), []byte("alice"))
	b.Put([]byte("u2"), []byte("bob"))
	b.Delete([]byte("u3"))
	if b.Len() != 3 {
		t.Fatalf("Len %d", b.Len())
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("u1"))
	if err != nil || string(v) != "alice" {
		t.Fatalf("u1: %q %v", v, err)
	}
	v, err = db.Get([]byte("u2"))
	if err != nil || string(v) != "bob" {
		t.Fatalf("u2: %q %v", v, err)
	}
	if _, err := db.Get([]byte("u3")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("u3: %v", err)
	}
}

func TestWriteBatchCopiesSlices(t *testing.T) {
	db, _ := openTemp(t, Options{})
	key := []byte("k")
	val := []byte("before")
	var b WriteBatch
	b.Put(key, val)
	copy(val, "AFTER!")
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "before" {
		t.Fatalf("caller mutation leaked into batch: %q %v", v, err)
	}
}

func TestWriteBatchEmptyAndReset(t *testing.T) {
	db, _ := openTemp(t, Options{})
	var b WriteBatch
	if err := db.Apply(&b); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	b.Put([]byte("a"), []byte("1"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Len() != 0 || b.Size() != 0 {
		t.Fatalf("after Reset: len %d size %d", b.Len(), b.Size())
	}
	b.Put([]byte("b"), []byte("2"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b"} {
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
}

func TestWriteBatchRejectsEmptyKey(t *testing.T) {
	db, _ := openTemp(t, Options{})
	var b WriteBatch
	b.Put([]byte("ok"), []byte("1"))
	b.Put(nil, []byte("2"))
	if err := db.Apply(&b); err == nil {
		t.Fatal("empty key accepted")
	}
	// The batch must have been rejected wholesale, not partially applied.
	if _, err := db.Get([]byte("ok")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial batch applied: %v", err)
	}
}

func TestWriteBatchOverwriteWithinBatch(t *testing.T) {
	db, _ := openTemp(t, Options{})
	var b WriteBatch
	b.Put([]byte("k"), []byte("v1"))
	b.Delete([]byte("k"))
	b.Put([]byte("k"), []byte("v2"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("last-write-wins violated: %q %v", v, err)
	}
}

func TestWriteBatchClosedDB(t *testing.T) {
	db, _ := openTemp(t, Options{})
	db.Close()
	var b WriteBatch
	b.Put([]byte("k"), []byte("v"))
	if err := db.Apply(&b); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}

func TestWriteBatchTriggersFlush(t *testing.T) {
	db, _ := openTemp(t, Options{MemtableBytes: 1 << 10, DisableAutoCompaction: true})
	var b WriteBatch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte("v"), 64))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if db.SegmentCount() == 0 {
		t.Fatal("oversized batch never flushed the memtable")
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("k%03d: %v", i, err)
		}
	}
}

// TestBatchRecovery commits two batches, crashes (abandons the handle), and
// asserts both replay intact.
func TestBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	var b WriteBatch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	b.Delete([]byte("a"))
	b.Put([]byte("c"), []byte("3"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	db.wal.f.Close() // crash: no Close, no Flush

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone from second batch lost")
	}
	for k, want := range map[string]string{"b": "2", "c": "3"} {
		v, err := db2.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("%s: %q %v", k, v, err)
		}
	}
}

// TestBatchTornTailDiscardedAtomically kills a WriteBatch mid-WAL-append by
// truncating the log at every possible byte boundary inside the batch
// record, reopens, and asserts all-or-nothing: the committed first batch is
// always intact and the torn second batch never applies partially.
func TestBatchTornTailDiscardedAtomically(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	var b WriteBatch
	b.Put([]byte("committed1"), []byte("x"))
	b.Put([]byte("committed2"), []byte("y"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	committedLen := walFileLen(t, dir)

	b.Reset()
	b.Put([]byte("torn1"), []byte("1"))
	b.Delete([]byte("committed1"))
	b.Put([]byte("torn2"), []byte("2"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	db.wal.f.Close()

	walPath := filepath.Join(dir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) <= committedLen {
		t.Fatalf("second batch added no bytes (%d <= %d)", len(full), committedLen)
	}

	for cut := committedLen; cut < int64(len(full)); cut++ {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(dir, Options{DisableAutoCompaction: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Committed batch: always there, including the key the torn batch
		// tried to delete.
		for _, k := range []string{"committed1", "committed2"} {
			if _, err := db2.Get([]byte(k)); err != nil {
				t.Fatalf("cut %d: committed key %s lost: %v", cut, k, err)
			}
		}
		// Torn batch: never partially applied.
		_, err1 := db2.Get([]byte("torn1"))
		_, err2 := db2.Get([]byte("torn2"))
		if !errors.Is(err1, ErrNotFound) || !errors.Is(err2, ErrNotFound) {
			t.Fatalf("cut %d: torn batch partially applied: %v %v", cut, err1, err2)
		}
		db2.wal.f.Close() // keep the on-disk log bytes for the next cut
	}
}

func walFileLen(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestBatchCorruptMiddleStopsReplay flips a byte inside a committed batch
// record and checks replay stops there (prefix survives, suffix discarded)
// rather than erroring out.
func TestBatchCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("first"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	firstLen := walFileLen(t, dir)
	var b WriteBatch
	b.Put([]byte("second"), []byte("gone"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	db.wal.f.Close()

	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[firstLen+9] ^= 0xff // inside the batch record's payload
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("first")); err != nil {
		t.Fatalf("prefix lost: %v", err)
	}
	if _, err := db2.Get([]byte("second")); !errors.Is(err, ErrNotFound) {
		t.Fatal("corrupt batch applied")
	}
}

func TestWALBatchRoundTrip(t *testing.T) {
	entries := []walEntry{
		{key: []byte("a"), value: []byte("1")},
		{key: []byte("bb"), tombstone: true},
		{key: []byte("ccc"), value: bytes.Repeat([]byte("z"), 300)},
	}
	buf := []byte{opBatch}
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendWALSubEntry(buf, e)
	}
	got, err := decodeWALPayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries", len(got))
	}
	for i := range entries {
		if !bytes.Equal(got[i].key, entries[i].key) ||
			!bytes.Equal(got[i].value, entries[i].value) ||
			got[i].tombstone != entries[i].tombstone {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
	}
}
