package store

import (
	"errors"
	"fmt"
)

// WriteBatch accumulates puts and deletes that commit atomically: Apply
// appends them to the WAL as a single CRC-framed record and installs them
// in the memtable under one lock acquisition. A crash mid-append discards
// the whole batch on replay — readers never observe a partially applied
// batch, before or after recovery.
//
// A WriteBatch is not safe for concurrent use; build it on one goroutine
// and hand it to Apply. It may be reused after Reset.
type WriteBatch struct {
	entries    []walEntry
	annotation []byte
	size       int
}

// Put queues a key/value pair. Both slices are copied immediately.
func (b *WriteBatch) Put(key, value []byte) {
	b.entries = append(b.entries, walEntry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
}

// Delete queues a tombstone for key. The slice is copied immediately.
func (b *WriteBatch) Delete(key []byte) {
	b.entries = append(b.entries, walEntry{
		key:       append([]byte(nil), key...),
		tombstone: true,
	})
	b.size += len(key)
}

// SetAnnotation attaches an opaque blob to the batch's log record. The
// engine persists it in the WAL framing and delivers it to log tails
// (LogRecord.Annotation) but never interprets it — replay ignores it. The
// ingest path uses it to ship derived state (the wave's interaction
// events) alongside the key updates so a replica can rebuild what the
// key/value entries alone cannot express. The slice is copied.
func (b *WriteBatch) SetAnnotation(data []byte) {
	b.annotation = append([]byte(nil), data...)
}

// Len returns the number of queued operations.
func (b *WriteBatch) Len() int { return len(b.entries) }

// Size returns the queued payload bytes (keys + values), a cheap proxy for
// how much WAL and memtable space Apply will consume.
func (b *WriteBatch) Size() int { return b.size }

// Reset clears the batch for reuse, keeping allocated capacity.
func (b *WriteBatch) Reset() {
	b.entries = b.entries[:0]
	b.annotation = nil
	b.size = 0
}

// Apply commits the batch. Either every operation becomes durable and
// visible, or (on error or crash) none do. An empty batch is a no-op.
func (db *DB) Apply(b *WriteBatch) error {
	if b.Len() == 0 {
		return nil
	}
	for _, e := range b.entries {
		if len(e.key) == 0 {
			return errors.New("store: empty key in batch")
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	lsn := db.lastLSN + 1
	payload := encodeLSNRecord(lsn, b.annotation, b.entries)
	if err := db.wal.writeRecord(payload); err != nil {
		return err
	}
	db.installBatchLocked(b)
	db.noteCommitLocked(lsn, payload)
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// ApplyAll commits a sequence of batches as one ordered group. The
// guarantees a pipelined caller builds on:
//
//   - Order: the batches reach the WAL in slice order, under one lock
//     acquisition — no other writer's record interleaves, and two ApplyAll
//     calls serialize wholesale. Crash replay therefore recovers a PREFIX
//     of the sequence: batch i+1's effects are never durable without batch
//     i's. This is the store-level ordering the coalescer's commit pipeline
//     relies on for same-shard WriteBatches of successive waves.
//   - Atomicity per batch: each batch is its own CRC-framed replay record,
//     exactly as Apply writes it — a torn tail discards whole batches,
//     never partial ones.
//   - One sync: with SyncWrites the whole sequence is fsynced once, after
//     the last append — the group-commit economics that let a wave of K
//     shard batches pay one device flush instead of K.
//   - All-or-nothing visibility: on any error nothing is installed in the
//     memtable and the caller must treat every batch as not applied. (As
//     with Apply, a sync failure cannot un-append: records already written
//     may still surface after a crash-restart even though the call
//     reported failure — the standard WAL caveat for unacknowledged
//     writes.) A failed append, flush or sync also disables the log
//     (ErrWALFailed) until the store is reopened: the failed record's
//     bytes may already be durable under an LSN the caller was told
//     failed, and appending a NEW record under that LSN would make the
//     log ambiguous at that position — a replication tail and crash
//     replay could then resolve the same LSN to different contents.
//     Reopening replays what actually landed and continues past it.
//
// Empty batches are skipped; an all-empty (or empty) sequence is a no-op.
func (db *DB) ApplyAll(batches []*WriteBatch) error {
	return db.ApplyAllTagged(batches, 0)
}

// ApplyAllTagged is ApplyAll with a serving-layer wave tag: the sequence's
// single WAL sync reports to the engine observer (observer.go) carrying
// wave, so the serving layer can attribute the fsync stall back to the
// group commit that paid it. A zero wave is untagged.
func (db *DB) ApplyAllTagged(batches []*WriteBatch, wave uint64) error {
	live := batches[:0:0]
	for _, b := range batches {
		if b.Len() == 0 {
			continue
		}
		for _, e := range b.entries {
			if len(e.key) == 0 {
				return errors.New("store: empty key in batch")
			}
		}
		// Reject an oversize batch up front, before ANY record of the
		// sequence reaches the buffered writer: a mid-sequence cap error
		// is not a sticky writer error, so earlier batches of the wave
		// would otherwise sit valid in the buffer and become durable on
		// the next flush — a wave the caller was told failed.
		if bound := walLSNRecordBound(b.annotation, b.entries); bound > maxWALRecord {
			return fmt.Errorf("store: batch record ~%d bytes exceeds %d-byte cap", bound, maxWALRecord)
		}
		live = append(live, b)
	}
	if len(live) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	lsn := db.lastLSN
	recs := make([]logRec, 0, len(live))
	for _, b := range live {
		lsn++
		payload := encodeLSNRecord(lsn, b.annotation, b.entries)
		if err := db.wal.writeRecordNoSync(payload); err != nil {
			return err
		}
		recs = append(recs, logRec{lsn: lsn, payload: payload})
	}
	if db.opts.SyncWrites {
		db.syncWave = wave
		err := db.wal.sync()
		db.syncWave = 0
		if err != nil {
			return err
		}
	}
	for _, b := range live {
		db.installBatchLocked(b)
	}
	// Only now — durable per the configuration and installed — do the
	// records join the shippable history: a tail never streams a record
	// this call will report as failed.
	db.activeRecs = append(db.activeRecs, recs...)
	db.lastLSN = lsn
	db.notifyTailLocked()
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// installBatchLocked applies one batch's entries to the memtable; the
// caller holds db.mu and has already made the batch durable.
func (db *DB) installBatchLocked(b *WriteBatch) {
	for _, e := range b.entries {
		if e.tombstone {
			db.mem.delete(e.key)
		} else {
			db.mem.put(e.key, e.value)
		}
	}
}
