package store

import "errors"

// WriteBatch accumulates puts and deletes that commit atomically: Apply
// appends them to the WAL as a single CRC-framed record and installs them
// in the memtable under one lock acquisition. A crash mid-append discards
// the whole batch on replay — readers never observe a partially applied
// batch, before or after recovery.
//
// A WriteBatch is not safe for concurrent use; build it on one goroutine
// and hand it to Apply. It may be reused after Reset.
type WriteBatch struct {
	entries []walEntry
	size    int
}

// Put queues a key/value pair. Both slices are copied immediately.
func (b *WriteBatch) Put(key, value []byte) {
	b.entries = append(b.entries, walEntry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
}

// Delete queues a tombstone for key. The slice is copied immediately.
func (b *WriteBatch) Delete(key []byte) {
	b.entries = append(b.entries, walEntry{
		key:       append([]byte(nil), key...),
		tombstone: true,
	})
	b.size += len(key)
}

// Len returns the number of queued operations.
func (b *WriteBatch) Len() int { return len(b.entries) }

// Size returns the queued payload bytes (keys + values), a cheap proxy for
// how much WAL and memtable space Apply will consume.
func (b *WriteBatch) Size() int { return b.size }

// Reset clears the batch for reuse, keeping allocated capacity.
func (b *WriteBatch) Reset() {
	b.entries = b.entries[:0]
	b.size = 0
}

// Apply commits the batch. Either every operation becomes durable and
// visible, or (on error or crash) none do. An empty batch is a no-op.
func (db *DB) Apply(b *WriteBatch) error {
	if b.Len() == 0 {
		return nil
	}
	for _, e := range b.entries {
		if len(e.key) == 0 {
			return errors.New("store: empty key in batch")
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.wal.appendBatch(b.entries); err != nil {
		return err
	}
	for _, e := range b.entries {
		if e.tombstone {
			db.mem.delete(e.key)
		} else {
			db.mem.put(e.key, e.value)
		}
	}
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}
