package store

import (
	"fmt"
	"os"
	"sync/atomic"
)

// KillableFileOps is a FileOps for fault-injection tests in higher layers
// (wired in via Options.FileOps): it passes everything through to the real
// filesystem until Kill is called; from then on WAL writes fail and bytes
// never reach the log — the cleanest stand-in for a dying storage device.
// The running process sees store errors on every commit, and a reopened
// store sees exactly what was written before the kill. Revive restores the
// passthrough (note the WAL's buffered writer keeps its sticky error until
// the store is reopened, as with any write failure).
type KillableFileOps struct {
	killed atomic.Bool
}

// Kill makes every subsequent WAL write fail.
func (f *KillableFileOps) Kill() { f.killed.Store(true) }

// Revive lets WAL writes through again.
func (f *KillableFileOps) Revive() { f.killed.Store(false) }

func (f *KillableFileOps) Create(name string) (SegFile, error) { return os.Create(name) }
func (f *KillableFileOps) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
func (f *KillableFileOps) Remove(name string) error { return os.Remove(name) }
func (f *KillableFileOps) OpenWAL(name string) (WALFile, error) {
	file, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &killableWAL{fs: f, File: file}, nil
}

type killableWAL struct {
	fs *KillableFileOps
	*os.File
}

func (w *killableWAL) Write(p []byte) (int, error) {
	if w.fs.killed.Load() {
		return 0, fmt.Errorf("store: wal write: device killed (injected)")
	}
	return w.File.Write(p)
}
