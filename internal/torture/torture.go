package torture

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/sum"
)

// Config drives one torture sweep.
type Config struct {
	// Seed derives every schedule; the same Seed replays the same sweep.
	Seed uint64
	// Schedules caps how many schedules run; <= 0 leaves the count to the
	// Budget. With neither set, 8 schedules run.
	Schedules int
	// Budget stops claiming new schedules once the wall clock exceeds it
	// (at least one schedule always runs).
	Budget time.Duration
	// Parallel is the number of concurrent schedules (schedules are fully
	// independent — own directory, own cores). Default min(GOMAXPROCS, 8).
	Parallel int
	// Dir is the parent for per-schedule scratch directories; empty uses
	// the system temp directory.
	Dir string
	// Log, when set, receives coarse progress lines.
	Log func(format string, args ...any)
	// Schedule is the per-seed schedule body (default RunSchedule). The
	// replication sweep substitutes RunReplSchedule (repl.go).
	Schedule func(seed uint64, dir string) (ScheduleResult, error)
}

// Report is one sweep's outcome. Err is the first violation (or harness
// failure); FailedSeed then reproduces it via RunSchedule.
type Report struct {
	Schedules  int
	Waves      int
	Faults     int
	Reopens    int
	Elapsed    time.Duration
	FailedSeed uint64
	Err        error
}

// Violation is a broken invariant, self-describing enough to file as a
// bug: the schedule seed reproduces it deterministically.
type Violation struct {
	Seed  uint64
	Msg   string
	Plan  string
	Fired []string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("torture: seed %d: %s (plan: %s; fired: %v)", v.Seed, v.Msg, v.Plan, v.Fired)
}

// ScheduleResult summarizes one schedule's run.
type ScheduleResult struct {
	Waves   int
	Faults  int
	Reopens int
}

// scheduleSeed derives schedule i's seed from the sweep seed with a
// splitmix64 finalizer, so every index is reproducible in isolation.
func scheduleSeed(sweep uint64, i int) uint64 {
	h := sweep + uint64(i)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 1
	}
	return h
}

// Run executes schedules until the count or budget is exhausted, or the
// first violation. Schedules run Parallel-wide; each is deterministic
// from its own seed, so parallelism never changes what a seed means.
func Run(cfg Config) Report {
	start := time.Now()
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
		if cfg.Parallel > 8 {
			cfg.Parallel = 8
		}
	}
	if cfg.Schedules <= 0 && cfg.Budget <= 0 {
		cfg.Schedules = 8
	}
	if cfg.Schedule == nil {
		cfg.Schedule = RunSchedule
	}
	var (
		mu   sync.Mutex
		rep  Report
		next int
		stop bool
	)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				done := stop ||
					(cfg.Schedules > 0 && next >= cfg.Schedules) ||
					(cfg.Budget > 0 && next > 0 && time.Since(start) >= cfg.Budget)
				if done {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				seed := scheduleSeed(cfg.Seed, i)
				dir, err := os.MkdirTemp(cfg.Dir, "torture-")
				var res ScheduleResult
				if err == nil {
					res, err = cfg.Schedule(seed, dir)
					// A crashed instance's fenced compactor may race the
					// removal; leftover scratch is the OS tempdir's problem.
					os.RemoveAll(dir)
				}

				mu.Lock()
				rep.Schedules++
				rep.Waves += res.Waves
				rep.Faults += res.Faults
				rep.Reopens += res.Reopens
				if err != nil && rep.Err == nil {
					rep.Err = err
					rep.FailedSeed = seed
					stop = true
				}
				if cfg.Log != nil && rep.Schedules%50 == 0 {
					cfg.Log("torture: %d schedules, %d waves, %d faults fired, %d reopens",
						rep.Schedules, rep.Waves, rep.Faults, rep.Reopens)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep
}

// RunSchedule runs one seed-determined schedule in dir: it derives the
// population, shard count, wave contents, fault plan, and reopen points
// from the seed, drives a durable core and a fault-free in-memory shadow
// core through identical waves, and checks the crash-consistency
// invariants after every wave, every reopen, and a final simulated crash.
//
// The invariants, per user u (snapshots are the shadow's encoded profile
// after each wave; "chain" is registration plus the waves touching u):
//
//   - wave-prefix recovery: after any crash+reopen, u's recovered state is
//     on the chain, at or after the last state known installed in memory —
//     an acked wave can never roll back, and no state that was never
//     submitted can appear;
//   - memory-vs-durable: live memory always shows a chain state at or
//     after the last ack (a failed wave leaves memory untouched; durable
//     state may run ahead of memory only by submitted-but-unacked waves,
//     the WAL's documented crash caveat);
//   - shard-batch atomicity: a wave's updates within one shard commit as
//     one record — users of the same shard cannot disagree about whether
//     the wave applied;
//   - bloom/index consistency: every key visible to a full scan is also
//     visible to point reads, with identical bytes;
//   - idempotent replay: reopening the directory twice (with a forced
//     compaction in between) observes identical key/value states.
func RunSchedule(seed uint64, dir string) (ScheduleResult, error) {
	r := rng.New(seed)
	users := 12 + r.Intn(13) // 12..24
	shards := []int{2, 4, 8}[r.Intn(3)]
	waves := 5 + r.Intn(6) // 5..10

	// Fault plan: 1-3 triggers over the op classes. WAL classes see an op
	// every wave, so their trigger range spans the whole run; segment and
	// directory ops are rarer (flush/compaction only), so their triggers
	// stay small enough to actually fire.
	nf := 1 + r.Intn(3)
	var plan []Fault
	for i := 0; i < nf; i++ {
		class := OpClass(r.Intn(int(numOpClasses)))
		mode := Mode(r.Intn(3))
		var nth uint64
		switch class {
		case OpWALWrite, OpWALSync:
			nth = uint64(1 + r.Intn(3*waves))
		default:
			nth = uint64(1 + r.Intn(8))
		}
		dup := false
		for _, f := range plan {
			if f.Class == class && f.Nth == nth {
				dup = true
			}
		}
		if !dup {
			plan = append(plan, Fault{Class: class, Mode: mode, Nth: nth})
		}
	}
	ops := NewScheduledOps(plan)

	mkViolation := func(format string, args ...any) *Violation {
		return &Violation{Seed: seed, Msg: fmt.Sprintf(format, args...), Plan: PlanString(plan), Fired: ops.Fired()}
	}

	tc := clock.NewSimulated(clock.Epoch)
	sc := clock.NewSimulated(clock.Epoch)
	opts := core.Options{
		DataDir: dir,
		Shards:  shards,
		Clock:   tc,
		Store: store.Options{
			MemtableBytes:   2 << 10, // tiny: every few waves flushes, compaction has runs to merge
			SyncWrites:      true,
			CompactMinRun:   2,
			CompactInterval: 2 * time.Millisecond,
			FileOps:         ops,
		},
	}
	spa, err := core.New(opts)
	if err != nil {
		return ScheduleResult{}, fmt.Errorf("torture: seed %d: opening durable core: %w", seed, err)
	}
	shadow, err := core.New(core.Options{Shards: shards, Clock: sc})
	if err != nil {
		return ScheduleResult{}, fmt.Errorf("torture: seed %d: opening shadow core: %w", seed, err)
	}
	defer shadow.Close()

	// snaps[j][u] is the shadow's encoded profile for u after wave j;
	// snaps[0] is the post-registration state of every user.
	snaps := make([]map[uint64][]byte, waves+1)
	snaps[0] = make(map[uint64][]byte, users)
	encodeProfile := func(s *core.SPA, u uint64) ([]byte, error) {
		p, err := s.Profile(u)
		if err != nil {
			return nil, err
		}
		return sum.Encode(&p), nil
	}
	for u := 1; u <= users; u++ {
		id := uint64(u)
		if err := spa.Register(id, nil); err != nil {
			return ScheduleResult{}, fmt.Errorf("torture: seed %d: register: %w", seed, err)
		}
		if err := shadow.Register(id, nil); err != nil {
			return ScheduleResult{}, fmt.Errorf("torture: seed %d: shadow register: %w", seed, err)
		}
		de, err := encodeProfile(spa, id)
		if err != nil {
			return ScheduleResult{}, fmt.Errorf("torture: seed %d: profile: %w", seed, err)
		}
		se, err := encodeProfile(shadow, id)
		if err != nil {
			return ScheduleResult{}, fmt.Errorf("torture: seed %d: shadow profile: %w", seed, err)
		}
		if !bytes.Equal(de, se) {
			return ScheduleResult{}, fmt.Errorf("torture: seed %d: registration state diverges from shadow", seed)
		}
		snaps[0][id] = se
	}

	// expect[u] is the chain index known installed in the durable core's
	// memory; durable state may only ever be at or after it.
	expect := make([]int, users+1)
	lastTouch := make([]int, users+1)
	waveFailed := make([]bool, waves+1)
	waveUsers := make([][]uint64, waves+1)

	// matchChain finds the latest chain index >= from whose snapshot of u
	// equals enc; -1 if none.
	matchChain := func(u uint64, from, upto int, enc []byte) int {
		for i := upto; i >= from; i-- {
			if s, ok := snaps[i][u]; ok && bytes.Equal(s, enc) {
				return i
			}
		}
		return -1
	}

	res := ScheduleResult{Waves: waves}
	ops.Arm()

	eventTypes := []lifelog.EventType{lifelog.EventClick, lifelog.EventPageView, lifelog.EventSearch}
	for j := 1; j <= waves; j++ {
		now := clock.Epoch.Add(time.Duration(j) * time.Hour)
		tc.Set(now)
		sc.Set(now)

		// Build the wave: 1-3 batches over disjoint user sets, 1-3 events
		// per user with per-user ascending timestamps inside the session
		// window, so the merged stream is always well-formed and any error
		// the durable core reports is a fault, never ErrBadStream.
		nb := 1 + r.Intn(3)
		perm := r.Perm(users)
		pick := 0
		batches := make([][]lifelog.Event, 0, nb)
		perBatch := make([][]uint64, 0, nb)
		var touched []uint64
		for b := 0; b < nb; b++ {
			nu := 1 + r.Intn(4)
			var evs []lifelog.Event
			var ids []uint64
			for k := 0; k < nu && pick < len(perm); k++ {
				id := uint64(perm[pick] + 1)
				pick++
				ids = append(ids, id)
				touched = append(touched, id)
				base := now.Add(-40 * time.Minute)
				ne := 1 + r.Intn(3)
				for e := 0; e < ne; e++ {
					evs = append(evs, lifelog.Event{
						UserID: id,
						Time:   base.Add(time.Duration(e) * 25 * time.Second),
						Type:   eventTypes[r.Intn(len(eventTypes))],
						Action: uint32(r.Intn(lifelog.ActionUniverse)),
						Value:  float32(r.Intn(50)),
					})
				}
			}
			if len(evs) > 0 {
				batches = append(batches, evs)
				perBatch = append(perBatch, ids)
			}
		}
		pipelined := r.Bool(0.5)
		reopen := r.Bool(0.18)
		graceful := r.Bool(0.5)

		// The fault-free shadow defines this wave's expected states.
		for b, out := range shadow.MultiIngest(batches) {
			if out.Err != nil || out.SkippedUnknown != 0 {
				return res, fmt.Errorf("torture: seed %d: shadow wave %d batch %d: %+v", seed, j, b, out)
			}
		}
		snaps[j] = make(map[uint64][]byte, len(touched))
		for _, u := range touched {
			enc, err := encodeProfile(shadow, u)
			if err != nil {
				return res, fmt.Errorf("torture: seed %d: shadow profile: %w", seed, err)
			}
			snaps[j][u] = enc
			lastTouch[u] = j
		}
		waveUsers[j] = touched

		var outs []core.IngestOutcome
		if pipelined {
			outs = spa.PrepareMulti(batches).Commit()
		} else {
			outs = spa.MultiIngest(batches)
		}
		for b, out := range outs {
			if out.Err == nil {
				for _, u := range perBatch[b] {
					expect[u] = j
				}
			} else {
				waveFailed[j] = true
			}
		}

		// Live memory check: every touched user shows either the last
		// installed state or this wave's state (a shard group that applied
		// even though another group failed the batch). Anything else is
		// memory diverging from the submitted chain.
		for _, u := range touched {
			enc, err := encodeProfile(spa, u)
			if err != nil {
				return res, mkViolation("wave %d: user %d unreadable in memory: %v", j, u, err)
			}
			switch {
			case bytes.Equal(enc, snaps[expect[u]][u]):
			case bytes.Equal(enc, snaps[j][u]):
				expect[u] = j
			default:
				return res, mkViolation("wave %d: user %d memory state off the wave chain (expect >= %d)", j, u, expect[u])
			}
		}

		if !reopen {
			continue
		}
		res.Reopens++
		if graceful {
			// Planned restart: Close flushes what it can (possibly hitting
			// scheduled faults — fine), and stops the compactor, so the
			// directory can be reopened in place.
			_ = spa.Close()
			ops.Revive()
		} else {
			// Crash: fence the abandoned instance off the directory (its
			// background compactor keeps running), give in-flight ops a
			// moment to land, and hand the successor a forked scheduler
			// that carries the remaining fault plan with the device back.
			ops.Kill()
			time.Sleep(10 * time.Millisecond)
			ops = ops.Fork()
			opts.Store.FileOps = ops
		}
		spa, err = core.New(opts)
		if err != nil {
			return res, mkViolation("wave %d: reopen failed: %v", j, err)
		}
		for u := 1; u <= users; u++ {
			id := uint64(u)
			enc, err := encodeProfile(spa, id)
			if err != nil {
				return res, mkViolation("wave %d: user %d lost across reopen: %v", j, id, err)
			}
			m := matchChain(id, expect[id], j, enc)
			if m < 0 {
				return res, mkViolation("wave %d: user %d recovered state off the wave chain (expect >= %d)", j, id, expect[id])
			}
			expect[id] = m
		}
	}

	// Final crash: fence the running instance and verify the directory the
	// way a restarted process would see it.
	ops.Kill()
	time.Sleep(10 * time.Millisecond)
	res.Faults = len(ops.Fired())
	if tamperAfterRun != nil {
		tamperAfterRun(dir)
	}

	final, err := verifyDir(dir, users, waves, snaps, expect, lastTouch, mkViolation)
	if err != nil {
		return res, err
	}

	// Shard-batch atomicity: for every failed wave, users of the same
	// shard whose final state is still that wave's verdict must agree on
	// whether it applied. Only users untouched after the wave vote (later
	// durable waves mask the verdict), and only when their chain states
	// are pairwise distinct (ambiguous matches abstain).
	mask := uint64(shards - 1)
	for j := 1; j <= waves; j++ {
		if !waveFailed[j] {
			continue
		}
		votes := make(map[uint64][]uint64) // shard -> voters
		for _, u := range waveUsers[j] {
			if lastTouch[u] != j {
				continue
			}
			if ambiguousAt(snaps, u, j) {
				continue
			}
			s := shardIndex(u, mask)
			votes[s] = append(votes[s], u)
		}
		for s, members := range votes {
			applied, notApplied := 0, 0
			for _, u := range members {
				if final[u] == j {
					applied++
				} else {
					notApplied++
				}
			}
			if applied > 0 && notApplied > 0 {
				return res, mkViolation("wave %d shard %d: %d users applied, %d users not — shard batch split", j, s, applied, notApplied)
			}
		}
	}
	return res, nil
}

// ambiguousAt reports whether u's wave-j snapshot collides with another
// state on u's chain, which would make "did wave j apply" unanswerable.
func ambiguousAt(snaps []map[uint64][]byte, u uint64, j int) bool {
	sj, ok := snaps[j][u]
	if !ok {
		return true
	}
	for i := range snaps {
		if i == j {
			continue
		}
		if s, ok := snaps[i][u]; ok && bytes.Equal(s, sj) {
			return true
		}
	}
	return false
}

// shardIndex mirrors the core's fixed partition mixer (core/shard.go) so
// the harness can group a wave's users the way the commit path did.
func shardIndex(userID, mask uint64) uint64 {
	h := userID
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h & mask
}

// verifyDir opens the post-crash directory with clean file ops and checks
// durability invariants: chain membership per user, bloom/index
// consistency, and idempotent replay across a reopen with a forced
// compaction in between. It returns each user's matched chain index.
func verifyDir(dir string, users, waves int, snaps []map[uint64][]byte, expect []int, lastTouch []int,
	mkViolation func(string, ...any) *Violation) (map[uint64]int, error) {

	scanAll := func(db *store.DB) (map[string][]byte, error) {
		m := make(map[string][]byte)
		err := db.Scan(nil, nil, func(k, v []byte) bool {
			m[string(k)] = append([]byte(nil), v...)
			return true
		})
		return m, err
	}

	db, err := store.Open(dir, store.Options{DisableAutoCompaction: true})
	if err != nil {
		return nil, mkViolation("final reopen failed: %v", err)
	}
	m1, err := scanAll(db)
	if err != nil {
		db.Close()
		return nil, mkViolation("final scan failed: %v", err)
	}
	// Bloom/index consistency: every scanned key point-reads identically.
	for k, v := range m1 {
		got, err := db.Get([]byte(k))
		if err != nil {
			db.Close()
			return nil, mkViolation("key %q scanned but Get failed: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			db.Close()
			return nil, mkViolation("key %q: Get disagrees with Scan", k)
		}
		if ok, err := db.Has([]byte(k)); err != nil || !ok {
			db.Close()
			return nil, mkViolation("key %q: Has=%v err=%v after Scan saw it", k, ok, err)
		}
	}
	if err := db.Close(); err != nil {
		return nil, mkViolation("final close failed: %v", err)
	}

	// Idempotent replay: a second open (plus a forced full compaction)
	// observes the identical key/value state.
	db2, err := store.Open(dir, store.Options{DisableAutoCompaction: true})
	if err != nil {
		return nil, mkViolation("second reopen failed: %v", err)
	}
	m2, err := scanAll(db2)
	if err == nil {
		if cerr := db2.Compact(); cerr != nil {
			err = fmt.Errorf("forced compaction: %w", cerr)
		}
	}
	var m3 map[string][]byte
	if err == nil {
		m3, err = scanAll(db2)
	}
	db2.Close()
	if err != nil {
		return nil, mkViolation("second-pass verification failed: %v", err)
	}
	for _, pair := range []struct {
		name string
		m    map[string][]byte
	}{{"reopen", m2}, {"reopen+compact", m3}} {
		if len(pair.m) != len(m1) {
			return nil, mkViolation("%s changed key count: %d != %d", pair.name, len(pair.m), len(m1))
		}
		for k, v := range m1 {
			if !bytes.Equal(pair.m[k], v) {
				return nil, mkViolation("%s changed key %q", pair.name, k)
			}
		}
	}

	// Chain membership: every user's durable profile is a chain state at
	// or after the last state known installed in memory.
	final := make(map[uint64]int, users)
	for u := 1; u <= users; u++ {
		id := uint64(u)
		raw, ok := m1[string(sum.Key(id))]
		if !ok {
			return nil, mkViolation("user %d missing from durable state", id)
		}
		matched := -1
		for i := waves; i >= expect[id]; i-- {
			if s, ok := snaps[i][id]; ok && bytes.Equal(s, raw) {
				matched = i
				break
			}
		}
		if matched < 0 {
			return nil, mkViolation("user %d durable state off the wave chain (expect >= %d, last touch %d)",
				id, expect[id], lastTouch[id])
		}
		final[id] = matched
	}
	return final, nil
}
