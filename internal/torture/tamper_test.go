package torture

import (
	"os"
	"path/filepath"
	"testing"
)

// TestHarnessDetectsDataLoss is the watchdog's watchdog: a sweep that
// never fails proves nothing unless the checks can fail. Deleting the WAL
// after the final crash simulates a storage stack that lied about
// durability — acked waves that never reached a segment vanish — and the
// chain-membership check must catch it within a few schedules.
func TestHarnessDetectsDataLoss(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 200; i++ {
		seed := scheduleSeed(99, i)
		sub := filepath.Join(dir, "s")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		tamperAfterRun = func(d string) {
			os.Remove(filepath.Join(d, "wal.log"))
		}
		_, err := RunSchedule(seed, sub)
		tamperAfterRun = nil
		os.RemoveAll(sub)
		if err != nil {
			t.Logf("schedule %d caught the loss: %v", i, err)
			return
		}
	}
	t.Fatal("deleting the WAL never produced a detected violation in 200 schedules")
}
