package torture

import (
	"errors"
	"flag"
	"testing"
	"time"

	"repro/internal/store"
)

var (
	tortureBudget = flag.Duration("torture.budget", 0,
		"wall-clock budget for the torture sweep (0 = schedule-count bound)")
	tortureSchedules = flag.Int("torture.schedules", 0,
		"max fault schedules to run (0 = default 16, or budget-bound when -torture.budget is set)")
	tortureSeed = flag.Uint64("torture.seed", 0,
		"replay one specific schedule seed (as printed by a failure) instead of sweeping")
	sweepSeed = flag.Uint64("torture.sweep-seed", 1,
		"sweep seed deriving the schedule sequence")
)

// TestTortureSweep is the randomized fault-schedule sweep. The default run
// is sized for tier-1 (`go test ./...`); CI runs it wide via
// `-torture.budget=60s -torture.schedules=250`. A failure prints the
// schedule seed; replay it alone with `-torture.seed=N`.
func TestTortureSweep(t *testing.T) {
	if *tortureSeed != 0 {
		res, err := RunSchedule(*tortureSeed, t.TempDir())
		if err != nil {
			t.Fatalf("schedule seed %d: %v", *tortureSeed, err)
		}
		t.Logf("schedule seed %d clean: %d waves, %d faults fired, %d reopens",
			*tortureSeed, res.Waves, res.Faults, res.Reopens)
		return
	}
	cfg := Config{
		Seed:      *sweepSeed,
		Schedules: *tortureSchedules,
		Budget:    *tortureBudget,
		Dir:       t.TempDir(),
		Log:       t.Logf,
	}
	if cfg.Schedules == 0 && cfg.Budget == 0 {
		cfg.Schedules = 16
		if testing.Short() {
			cfg.Schedules = 4
		}
	}
	rep := Run(cfg)
	if rep.Err != nil {
		t.Fatalf("%v\nrepro: go test ./internal/torture -run TestTortureSweep -torture.seed=%d\n"+
			"       (or: spabench -torture -seed %d)", rep.Err, rep.FailedSeed, rep.FailedSeed)
	}
	if rep.Schedules == 0 {
		t.Fatal("sweep ran zero schedules")
	}
	t.Logf("torture: %d schedules, %d waves, %d faults fired, %d reopens in %v",
		rep.Schedules, rep.Waves, rep.Faults, rep.Reopens, rep.Elapsed.Round(time.Millisecond))
}

// TestReplTortureSweep is the leader+follower fault sweep: both sides of
// a replicated pair run over scheduled-fault devices, the leader crashes
// mid-wave, the follower crashes mid-apply, and every schedule must end
// with byte-equal convergence without the follower ever getting ahead of
// the leader's durable log. Same flag vocabulary as TestTortureSweep;
// replay one seed with `-torture.seed=N -run TestReplTortureSweep`.
func TestReplTortureSweep(t *testing.T) {
	if *tortureSeed != 0 {
		res, err := RunReplSchedule(*tortureSeed, t.TempDir())
		if err != nil {
			t.Fatalf("repl schedule seed %d: %v", *tortureSeed, err)
		}
		t.Logf("repl schedule seed %d clean: %d waves, %d faults fired, %d reopens",
			*tortureSeed, res.Waves, res.Faults, res.Reopens)
		return
	}
	cfg := Config{
		Seed:      *sweepSeed,
		Schedules: *tortureSchedules,
		Budget:    *tortureBudget,
		Dir:       t.TempDir(),
		Log:       t.Logf,
		Schedule:  RunReplSchedule,
	}
	if cfg.Schedules == 0 && cfg.Budget == 0 {
		cfg.Schedules = 12
		if testing.Short() {
			cfg.Schedules = 3
		}
	}
	rep := Run(cfg)
	if rep.Err != nil {
		t.Fatalf("%v\nrepro: go test ./internal/torture -run TestReplTortureSweep -torture.seed=%d", rep.Err, rep.FailedSeed)
	}
	if rep.Schedules == 0 {
		t.Fatal("sweep ran zero schedules")
	}
	t.Logf("repl torture: %d schedules, %d waves, %d faults fired, %d reopens in %v",
		rep.Schedules, rep.Waves, rep.Faults, rep.Reopens, rep.Elapsed.Round(time.Millisecond))
}

// TestScheduleSeedStable pins the seed derivation: a printed failure seed
// must mean the same schedule forever.
func TestScheduleSeedStable(t *testing.T) {
	if a, b := scheduleSeed(1, 0), scheduleSeed(1, 0); a != b {
		t.Fatalf("seed derivation unstable: %d != %d", a, b)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := scheduleSeed(7, i)
		if s == 0 || seen[s] {
			t.Fatalf("degenerate schedule seed at index %d: %d", i, s)
		}
		seen[s] = true
	}
}

// TestScheduledOpsSemantics exercises the scheduler in isolation: counting
// starts at Arm, one-shot faults clear, short writes leave a prefix, kill
// is sticky until Revive, and Fork revives the clone but not the original.
func TestScheduledOpsSemantics(t *testing.T) {
	dir := t.TempDir()
	ops := NewScheduledOps([]Fault{
		{Class: OpWALWrite, Mode: ModeShort, Nth: 2},
		{Class: OpWALSync, Mode: ModeKill, Nth: 2},
	})
	w, err := ops.OpenWAL(dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	// Unarmed: nothing counts, nothing fires.
	if _, err := w.Write([]byte("pre-arm")); err != nil {
		t.Fatalf("unarmed write: %v", err)
	}
	ops.Arm()
	if _, err := w.Write([]byte("abcd")); err != nil {
		t.Fatalf("write #1: %v", err)
	}
	// #2 is the scheduled short write: half the payload lands, then error.
	n, err := w.Write([]byte("WXYZ"))
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if _, err := w.Write([]byte("more")); err != nil {
		t.Fatalf("post-fault write must pass: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync #1: %v", err)
	}
	// Sync #2 kills the device: every mutation class fails from here.
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync #2 should kill: %v", err)
	}
	if _, err := w.Write([]byte("dead")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on killed device: %v", err)
	}
	if err := ops.Rename(dir+"/a", dir+"/b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename on killed device: %v", err)
	}
	if _, err := ops.Create(dir + "/seg"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create on killed device: %v", err)
	}
	// Fork revives the clone; the original stays fenced.
	clone := ops.Fork()
	if _, err := ops.Create(dir + "/seg"); !errors.Is(err, ErrInjected) {
		t.Fatalf("original must stay killed after Fork: %v", err)
	}
	f, err := clone.Create(dir + "/seg")
	if err != nil {
		t.Fatalf("forked clone create: %v", err)
	}
	f.Close()
	if got := clone.Fired(); len(got) != 2 {
		t.Fatalf("clone lost firing history: %v", got)
	}
	var _ store.FileOps = clone // interface conformance
}
