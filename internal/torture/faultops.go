// Package torture is the storage fault-schedule sweep: it composes
// seed-derived FileOps fault schedules (fail / short-write / kill at the
// Nth WAL write, WAL sync, segment create, segment write, segment sync,
// rename, or remove) with concurrent ingest workloads — MultiIngest and
// PrepareMulti/Commit waves over a sharded core, background compaction,
// graceful and crash reopen cycles — and after every schedule reopens the
// surviving directory and checks the store's crash-consistency contract
// against a fault-free shadow core fed the identical waves.
//
// Everything a schedule does — population size, shard count, wave
// contents, fault classes, trigger counts, reopen points — is a pure
// function of one uint64 seed, so a reported violation reproduces from
// its seed alone (`go test ./internal/torture -torture.seed=N`, or
// `spabench -torture -seed N`). The invariants themselves are
// interleaving-independent: background compaction and shard fan-out may
// schedule differently between runs, but the set of states a user's
// durable profile is allowed to occupy does not.
package torture

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/store"
)

// ErrInjected tags every fault the scheduler fires, so harness code (and
// curious store layers) can tell injected failures from real ones.
var ErrInjected = errors.New("torture: injected fault")

// OpClass names one interceptable filesystem operation class.
type OpClass int

const (
	OpWALWrite OpClass = iota
	OpWALSync
	OpSegCreate
	OpSegWrite
	OpSegSync
	OpRename
	OpRemove
	numOpClasses
)

func (c OpClass) String() string {
	switch c {
	case OpWALWrite:
		return "wal-write"
	case OpWALSync:
		return "wal-sync"
	case OpSegCreate:
		return "seg-create"
	case OpSegWrite:
		return "seg-write"
	case OpSegSync:
		return "seg-sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op-%d", int(c))
}

// Mode is what happens when a fault triggers.
type Mode int

const (
	// ModeFail returns an error without touching the file — a one-shot
	// EIO; the same op class succeeds again afterwards.
	ModeFail Mode = iota
	// ModeShort writes a prefix of the payload and then errors — a torn
	// write, the case WAL CRC framing and recovery truncation exist for.
	// On non-write classes it degrades to ModeFail.
	ModeShort
	// ModeKill fails this and every later mutation op of every class
	// until Revive — the storage device dying under the process.
	ModeKill
)

func (m Mode) String() string {
	switch m {
	case ModeFail:
		return "fail"
	case ModeShort:
		return "short-write"
	case ModeKill:
		return "kill"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// Fault is one scheduled trigger: the Nth armed op of Class fires Mode.
type Fault struct {
	Class OpClass
	Mode  Mode
	Nth   uint64
}

func (f Fault) String() string {
	return fmt.Sprintf("%s#%d:%s", f.Class, f.Nth, f.Mode)
}

// ScheduledOps is a store.FileOps that executes a fault schedule. It
// passes everything through to the real filesystem until Arm (so setup
// traffic like user registration doesn't consume trigger counts), then
// counts ops per class and fires the scheduled faults. All mutation ops
// are gated; reads (WAL replay, segment loads) always pass, matching a
// device whose written sectors stay readable.
type ScheduledOps struct {
	mu     sync.Mutex
	armed  bool
	killed bool
	counts [numOpClasses]uint64
	plan   []Fault
	fired  []string
}

// NewScheduledOps builds an unarmed scheduler for the given plan.
func NewScheduledOps(plan []Fault) *ScheduledOps {
	return &ScheduledOps{plan: plan}
}

// Arm starts counting ops against the schedule.
func (o *ScheduledOps) Arm() {
	o.mu.Lock()
	o.armed = true
	o.mu.Unlock()
}

// Revive clears a ModeKill — the device coming back after a restart. The
// op counters and any unfired faults keep going.
func (o *ScheduledOps) Revive() {
	o.mu.Lock()
	o.killed = false
	o.mu.Unlock()
}

// Kill fails every subsequent mutation op, exactly as a fired ModeKill
// fault would. The harness uses it to fence an abandoned ("crashed")
// store instance off the directory before inspecting or copying it.
func (o *ScheduledOps) Kill() {
	o.mu.Lock()
	o.killed = true
	o.mu.Unlock()
}

// Fork clones the scheduler for a store reopened after a crash: the
// clone continues the op counts and any unfired faults with the device
// revived, while the original stays killed — permanently fencing the
// abandoned instance (and its background compactor) off the directory.
func (o *ScheduledOps) Fork() *ScheduledOps {
	o.mu.Lock()
	defer o.mu.Unlock()
	return &ScheduledOps{
		armed:  o.armed,
		counts: o.counts,
		plan:   o.plan,
		fired:  append([]string(nil), o.fired...),
	}
}

// Fired reports the faults that actually triggered, in firing order.
func (o *ScheduledOps) Fired() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.fired...)
}

// step counts one op and decides its fate: nil error (pass), a fault
// error, or a fault error with short=true (write a prefix first).
func (o *ScheduledOps) step(class OpClass) (short bool, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.armed {
		return false, nil
	}
	if o.killed {
		return false, fmt.Errorf("%w: %s while device killed", ErrInjected, class)
	}
	o.counts[class]++
	for _, f := range o.plan {
		if f.Class != class || f.Nth != o.counts[class] {
			continue
		}
		o.fired = append(o.fired, f.String())
		if f.Mode == ModeKill {
			o.killed = true
		}
		return f.Mode == ModeShort, fmt.Errorf("%w: %s", ErrInjected, f)
	}
	return false, nil
}

func (o *ScheduledOps) Create(name string) (store.SegFile, error) {
	if _, err := o.step(OpSegCreate); err != nil {
		return nil, err
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return &scheduledSeg{ops: o, File: f}, nil
}

func (o *ScheduledOps) Rename(oldpath, newpath string) error {
	if _, err := o.step(OpRename); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func (o *ScheduledOps) Remove(name string) error {
	if _, err := o.step(OpRemove); err != nil {
		return err
	}
	return os.Remove(name)
}

func (o *ScheduledOps) OpenWAL(name string) (store.WALFile, error) {
	// Opening is a read-side act (replay); it always passes so a revived
	// process can recover whatever the dead one persisted.
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &scheduledWAL{ops: o, File: f}, nil
}

type scheduledSeg struct {
	ops *ScheduledOps
	*os.File
}

func (s *scheduledSeg) Write(p []byte) (int, error) {
	short, err := s.ops.step(OpSegWrite)
	if err != nil {
		if short && len(p) > 1 {
			n, _ := s.File.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return s.File.Write(p)
}

func (s *scheduledSeg) Sync() error {
	if _, err := s.ops.step(OpSegSync); err != nil {
		return err
	}
	return s.File.Sync()
}

type scheduledWAL struct {
	ops *ScheduledOps
	*os.File
}

func (w *scheduledWAL) Write(p []byte) (int, error) {
	short, err := w.ops.step(OpWALWrite)
	if err != nil {
		if short && len(p) > 1 {
			n, _ := w.File.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return w.File.Write(p)
}

func (w *scheduledWAL) Sync() error {
	if _, err := w.ops.step(OpWALSync); err != nil {
		return err
	}
	return w.File.Sync()
}

// PlanString renders a fault plan compactly for logs.
func PlanString(plan []Fault) string {
	parts := make([]string, len(plan))
	for i, f := range plan {
		parts[i] = f.String()
	}
	return strings.Join(parts, " ")
}
