package torture

// Replication torture (DESIGN.md §9): one seed-determined schedule drives
// a faulty LEADER core and a faulty FOLLOWER core through the same
// WAL-shipping path the server uses — TailLog on the leader,
// ApplyReplicatedWave on the follower — with injected file faults on both
// sides, leader crashes mid-wave, and follower crashes mid-apply.
//
// The invariants under test:
//
//   - durable-prefix shipping: the follower never holds a wave the leader
//     would not itself recover. After every leader crash+reopen the
//     leader's committed position must be at or beyond the follower's —
//     if the tail ever handed out a record the leader then lost, this
//     trips;
//   - apply atomicity: a follower whose apply faulted and crashed
//     recovers to a committed position it actually reached, never past
//     it, and resumes cleanly from there;
//   - byte-equal convergence: once the follower has caught up to the
//     leader's final committed position, both stores export identical
//     snapshots and every user's profile reads byte-identically through
//     both cores.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lifelog"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/sum"
)

// replNode is one side of the replicated pair: a durable core over a
// scheduled-fault device, reopenable after crashes.
type replNode struct {
	spa  *core.SPA
	ops  *ScheduledOps
	opts core.Options
}

// crashReopen fences the node's device, forks the fault plan with the
// device revived, and reopens the core on the same directory.
func (n *replNode) crashReopen() error {
	n.ops.Kill()
	time.Sleep(10 * time.Millisecond)
	n.ops = n.ops.Fork()
	n.opts.Store.FileOps = n.ops
	spa, err := core.New(n.opts)
	if err != nil {
		return err
	}
	n.spa = spa
	return nil
}

// replFaultPlan derives a small fault plan biased toward the classes a
// replication node actually exercises every wave (WAL write/sync on the
// leader, WAL write + segment ops on the follower).
func replFaultPlan(r *rng.RNG, waves int) []Fault {
	nf := 1 + r.Intn(2)
	var plan []Fault
	for i := 0; i < nf; i++ {
		class := OpClass(r.Intn(int(numOpClasses)))
		mode := Mode(r.Intn(3))
		var nth uint64
		switch class {
		case OpWALWrite, OpWALSync:
			nth = uint64(1 + r.Intn(2*waves))
		default:
			nth = uint64(1 + r.Intn(6))
		}
		dup := false
		for _, f := range plan {
			if f.Class == class && f.Nth == nth {
				dup = true
			}
		}
		if !dup {
			plan = append(plan, Fault{Class: class, Mode: mode, Nth: nth})
		}
	}
	return plan
}

// RunReplSchedule runs one seed-determined leader+follower schedule in
// dir. Waves ingest on the leader (which may crash mid-wave and reopen),
// then ship to the follower over the committed-log tail (whose applies
// may fault, crashing and reopening the follower); the run ends with a
// full catch-up and a byte-equality check across both stores and cores.
func RunReplSchedule(seed uint64, dir string) (ScheduleResult, error) {
	r := rng.New(seed)
	users := 8 + r.Intn(9) // 8..16
	waves := 4 + r.Intn(5) // 4..8
	shards := []int{2, 4}[r.Intn(2)]

	leaderPlan := replFaultPlan(r, waves)
	followerPlan := replFaultPlan(r, waves)

	mkViolation := func(fired []string, format string, args ...any) *Violation {
		return &Violation{
			Seed:  seed,
			Msg:   fmt.Sprintf(format, args...),
			Plan:  "leader: " + PlanString(leaderPlan) + "; follower: " + PlanString(followerPlan),
			Fired: fired,
		}
	}

	newNode := func(sub string, plan []Fault, clk clock.Clock) (*replNode, error) {
		d := filepath.Join(dir, sub)
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
		n := &replNode{ops: NewScheduledOps(plan)}
		n.opts = core.Options{
			DataDir: d,
			Shards:  shards,
			Clock:   clk,
			Store: store.Options{
				MemtableBytes: 2 << 10,
				SyncWrites:    true,
				CompactMinRun: 2,
				FileOps:       n.ops,
			},
		}
		spa, err := core.New(n.opts)
		if err != nil {
			return nil, err
		}
		n.spa = spa
		return n, nil
	}

	lc := clock.NewSimulated(clock.Epoch)
	fc := clock.NewSimulated(clock.Epoch)
	leader, err := newNode("leader", leaderPlan, lc)
	if err != nil {
		return ScheduleResult{}, fmt.Errorf("torture: seed %d: opening leader: %w", seed, err)
	}
	follower, err := newNode("follower", followerPlan, fc)
	if err != nil {
		return ScheduleResult{}, fmt.Errorf("torture: seed %d: opening follower: %w", seed, err)
	}

	res := ScheduleResult{Waves: waves}
	allFired := func() []string {
		return append(append([]string{}, leader.ops.Fired()...), follower.ops.Fired()...)
	}

	// Registration happens before faults arm, as in RunSchedule: the
	// baseline population is part of the schedule's fixed preamble.
	for u := 1; u <= users; u++ {
		if err := leader.spa.Register(uint64(u), nil); err != nil {
			return res, fmt.Errorf("torture: seed %d: register: %w", seed, err)
		}
	}
	leader.ops.Arm()
	follower.ops.Arm()

	followerApplied := uint64(0)
	if lsn, ok := follower.spa.AppliedLSN(); ok {
		followerApplied = lsn
	}

	// pump ships the leader's committed records (followerApplied, target]
	// into the follower. A faulted apply crashes and reopens the follower,
	// re-resolving its position from recovery; the retry budget bounds the
	// worst case of a fault plan that keeps firing through reopens.
	pump := func(target uint64) error {
		for retries := 0; followerApplied < target; retries++ {
			if retries > 8 {
				return fmt.Errorf("torture: seed %d: follower could not catch up to %d after %d reopens", seed, target, retries)
			}
			tail, err := leader.spa.TailLog(followerApplied + 1)
			if err != nil {
				return mkViolation(allFired(), "tailing leader log from %d: %v", followerApplied+1, err)
			}
			crashed := false
			for followerApplied < target {
				rec, err := tail.Next()
				if err != nil {
					tail.Close()
					return mkViolation(allFired(), "leader tail died at %d: %v", followerApplied, err)
				}
				if rec.LSN > target {
					tail.Close()
					// The tail may only hand out records the leader has
					// durably committed; target IS the committed position.
					return mkViolation(allFired(), "tail shipped lsn %d beyond the committed position %d", rec.LSN, target)
				}
				if err := follower.spa.ApplyReplicatedWave(rec.LSN, rec.Annotation, rec.Entries); err != nil {
					// An injected follower fault: crash, reopen, resume
					// from whatever position recovery reports. A faulted
					// apply may still have committed its WAL record before
					// the fault (e.g. a later flush faulted), so recovery
					// may land on rec.LSN itself — but never past it, and
					// never below the last apply that returned clean.
					res.Reopens++
					if rerr := follower.crashReopen(); rerr != nil {
						tail.Close()
						return mkViolation(allFired(), "follower reopen after apply fault: %v", rerr)
					}
					recovered, ok := follower.spa.AppliedLSN()
					if !ok {
						tail.Close()
						return mkViolation(allFired(), "follower lost durability across reopen")
					}
					if recovered > rec.LSN {
						tail.Close()
						return mkViolation(allFired(), "follower recovered to %d, past the record being applied (%d)", recovered, rec.LSN)
					}
					if recovered < followerApplied {
						tail.Close()
						return mkViolation(allFired(), "follower lost applied waves across reopen: recovered %d, had %d", recovered, followerApplied)
					}
					followerApplied = recovered
					crashed = true
					break
				}
				followerApplied = rec.LSN
			}
			tail.Close()
			if !crashed {
				return nil
			}
		}
		return nil
	}

	eventTypes := []lifelog.EventType{lifelog.EventClick, lifelog.EventPageView, lifelog.EventSearch}
	for j := 1; j <= waves; j++ {
		now := clock.Epoch.Add(time.Duration(j) * time.Hour)
		lc.Set(now)
		fc.Set(now)

		// Build and ingest one wave on the leader; injected faults may fail
		// batches (fine — failed batches commit nothing) or kill the device
		// (the mid-wave crash), which forces a reopen before going on.
		nb := 1 + r.Intn(2)
		perm := r.Perm(users)
		pick := 0
		batches := make([][]lifelog.Event, 0, nb)
		for b := 0; b < nb; b++ {
			nu := 1 + r.Intn(3)
			var evs []lifelog.Event
			for k := 0; k < nu && pick < len(perm); k++ {
				id := uint64(perm[pick] + 1)
				pick++
				base := now.Add(-40 * time.Minute)
				for e, ne := 0, 1+r.Intn(3); e < ne; e++ {
					evs = append(evs, lifelog.Event{
						UserID: id,
						Time:   base.Add(time.Duration(e) * 25 * time.Second),
						Type:   eventTypes[r.Intn(len(eventTypes))],
						Action: uint32(r.Intn(lifelog.ActionUniverse)),
						Value:  float32(r.Intn(50)),
					})
				}
			}
			if len(evs) > 0 {
				batches = append(batches, evs)
			}
		}
		anyFailed := false
		for _, out := range leader.spa.MultiIngest(batches) {
			if out.Err != nil {
				anyFailed = true
			}
		}

		// A scheduled leader crash — sometimes right after a failed wave
		// (the mid-wave crash case), sometimes on a healthy one.
		if anyFailed || r.Bool(0.25) {
			res.Reopens++
			if err := leader.crashReopen(); err != nil {
				return res, mkViolation(allFired(), "wave %d: leader reopen: %v", j, err)
			}
			committed, ok := leader.spa.AppliedLSN()
			if !ok {
				return res, mkViolation(allFired(), "wave %d: leader lost durability across reopen", j)
			}
			// Durable-prefix invariant: everything the tail shipped must
			// have survived the leader's crash.
			if committed < followerApplied {
				return res, mkViolation(allFired(),
					"wave %d: follower holds lsn %d but the reopened leader only recovered to %d — a shipped wave was not durable",
					j, followerApplied, committed)
			}
		}

		committed, ok := leader.spa.AppliedLSN()
		if !ok {
			return res, mkViolation(allFired(), "wave %d: leader not durable", j)
		}
		if err := pump(committed); err != nil {
			return res, err
		}
	}

	// Final catch-up already happened in the last wave's pump; converge
	// and compare. Snapshot equality covers the stores byte-for-byte…
	lp, llsn, err := leader.spa.ExportSnapshot()
	if err != nil {
		return res, mkViolation(allFired(), "leader snapshot export: %v", err)
	}
	fp, flsn, err := follower.spa.ExportSnapshot()
	if err != nil {
		return res, mkViolation(allFired(), "follower snapshot export: %v", err)
	}
	if llsn != flsn {
		return res, mkViolation(allFired(), "converged positions disagree: leader %d, follower %d", llsn, flsn)
	}
	fm := make(map[string][]byte, len(fp))
	for _, p := range fp {
		fm[string(p.Key)] = p.Value
	}
	if len(lp) != len(fp) {
		return res, mkViolation(allFired(), "converged stores disagree on key count: leader %d, follower %d", len(lp), len(fp))
	}
	for _, p := range lp {
		if got, ok := fm[string(p.Key)]; !ok || !bytes.Equal(got, p.Value) {
			return res, mkViolation(allFired(), "converged stores disagree at key %q", p.Key)
		}
	}
	// …and profile equality covers the cores' read path: the follower
	// applied every wave through the same install sequence, so each user
	// must read byte-identically on both sides.
	for u := 1; u <= users; u++ {
		id := uint64(u)
		pl, err := leader.spa.Profile(id)
		if err != nil {
			return res, mkViolation(allFired(), "user %d unreadable on leader: %v", id, err)
		}
		pf, err := follower.spa.Profile(id)
		if err != nil {
			return res, mkViolation(allFired(), "user %d unreadable on follower: %v", id, err)
		}
		if !bytes.Equal(sum.Encode(&pl), sum.Encode(&pf)) {
			return res, mkViolation(allFired(), "user %d diverges between leader and follower after convergence", id)
		}
	}

	leader.ops.Kill()
	follower.ops.Kill()
	time.Sleep(10 * time.Millisecond)
	res.Faults = len(allFired())
	return res, nil
}
