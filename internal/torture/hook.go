package torture

// tamperAfterRun, when set, runs against the schedule directory after the
// final simulated crash and before verification — the hook the harness's
// own detection tests (tamper_test.go) use to prove the invariant checks
// can actually fail. Never set outside tests.
var tamperAfterRun func(dir string)
