package messaging

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/emotion"
)

func sens(pairs map[emotion.Attribute]float64) []float64 {
	s := make([]float64, emotion.NumAttributes)
	for a, w := range pairs {
		s[a] = w
	}
	return s
}

var product = Product{
	Name: "Advanced Project Management",
	SalesAttributes: []emotion.Attribute{
		emotion.Enthusiastic, emotion.Motivated, emotion.Hopeful,
		emotion.Lively, emotion.Stimulated, emotion.Shy, emotion.Frightened,
	},
}

func TestDBHasMessageForEveryAttribute(t *testing.T) {
	db := NewDB()
	for _, a := range emotion.AllAttributes() {
		m, err := db.ForAttribute(a)
		if err != nil {
			t.Fatal(err)
		}
		if m.Template == "" || !strings.Contains(m.Template, "{product}") {
			t.Fatalf("attribute %v template %q", a, m.Template)
		}
		if m.Standard {
			t.Fatalf("attribute message %v marked standard", a)
		}
	}
	if !db.Standard().Standard {
		t.Fatal("standard message not marked")
	}
}

func TestMessageIDsUnique(t *testing.T) {
	db := NewDB()
	seen := map[int]bool{db.Standard().ID: true}
	for _, a := range emotion.AllAttributes() {
		m, _ := db.ForAttribute(a)
		if seen[m.ID] {
			t.Fatalf("duplicate message id %d", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestRenderSubstitutesProduct(t *testing.T) {
	db := NewDB()
	m, _ := db.ForAttribute(emotion.Hopeful)
	out := m.Render("English B2")
	if !strings.Contains(out, "English B2") || strings.Contains(out, "{product}") {
		t.Fatalf("render: %q", out)
	}
}

func TestCaseStandardNoMatches(t *testing.T) {
	db := NewDB()
	asg, err := db.Assign(product, sens(nil), 0.5, ByPriority)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case != CaseStandard {
		t.Fatalf("case %v", asg.Case)
	}
	if !asg.Message.Standard {
		t.Fatal("not the standard message")
	}
	if len(asg.Matched) != 0 {
		t.Fatal("matches on standard case")
	}
	if !strings.Contains(asg.Rendered, product.Name) {
		t.Fatal("standard message not rendered")
	}
}

func TestCaseSingleMatch(t *testing.T) {
	db := NewDB()
	asg, err := db.Assign(product, sens(map[emotion.Attribute]float64{emotion.Enthusiastic: 0.95}), 0.5, ByPriority)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case != CaseSingle {
		t.Fatalf("case %v", asg.Case)
	}
	if asg.Message.Attribute != emotion.Enthusiastic {
		t.Fatalf("message attribute %v", asg.Message.Attribute)
	}
}

func TestCaseMultiByPriority(t *testing.T) {
	db := NewDB()
	db.SetPriority(emotion.Lively, 400)
	db.SetPriority(emotion.Stimulated, 300)
	db.SetPriority(emotion.Shy, 200)
	db.SetPriority(emotion.Frightened, 100)
	// Shy has the highest *sensibility* but lively the highest *priority*.
	s := sens(map[emotion.Attribute]float64{
		emotion.Lively: 0.6, emotion.Stimulated: 0.7, emotion.Shy: 0.9, emotion.Frightened: 0.65,
	})
	asg, err := db.Assign(product, s, 0.5, ByPriority)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case != CaseMultiPriority {
		t.Fatalf("case %v", asg.Case)
	}
	if asg.Message.Attribute != emotion.Lively {
		t.Fatalf("priority winner %v, want lively", asg.Message.Attribute)
	}
	want := []emotion.Attribute{emotion.Lively, emotion.Stimulated, emotion.Shy, emotion.Frightened}
	for i, m := range asg.Matched {
		if m.Attribute != want[i] {
			t.Fatalf("priority order %v", asg.Matched)
		}
	}
}

func TestCaseMultiBySensibility(t *testing.T) {
	db := NewDB()
	s := sens(map[emotion.Attribute]float64{emotion.Motivated: 0.7, emotion.Hopeful: 0.9})
	asg, err := db.Assign(product, s, 0.5, BySensibility)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case != CaseMultiSensibility {
		t.Fatalf("case %v", asg.Case)
	}
	if asg.Message.Attribute != emotion.Hopeful {
		t.Fatalf("sensibility winner %v, want hopeful", asg.Message.Attribute)
	}
}

func TestThresholdExcludesWeakSensibilities(t *testing.T) {
	db := NewDB()
	s := sens(map[emotion.Attribute]float64{emotion.Motivated: 0.49, emotion.Hopeful: 0.51})
	asg, err := db.Assign(product, s, 0.5, BySensibility)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case != CaseSingle || asg.Message.Attribute != emotion.Hopeful {
		t.Fatalf("threshold filtering broken: %v %v", asg.Case, asg.Message.Attribute)
	}
}

func TestNonSalesAttributesIgnored(t *testing.T) {
	db := NewDB()
	// Apathetic is strong but not a sales attribute of this product.
	s := sens(map[emotion.Attribute]float64{emotion.Apathetic: 0.99})
	asg, err := db.Assign(product, s, 0.5, ByPriority)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Case != CaseStandard {
		t.Fatalf("non-sales attribute matched: %v", asg.Case)
	}
}

func TestAssignValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.Assign(Product{}, sens(nil), 0.5, ByPriority); err == nil {
		t.Fatal("empty product accepted")
	}
	if _, err := db.Assign(product, []float64{1, 2}, 0.5, ByPriority); err == nil {
		t.Fatal("wrong sensibility length accepted")
	}
	dup := Product{Name: "x", SalesAttributes: []emotion.Attribute{emotion.Shy, emotion.Shy}}
	if _, err := db.Assign(dup, sens(nil), 0.5, ByPriority); err == nil {
		t.Fatal("duplicate sales attribute accepted")
	}
	bad := Product{Name: "x", SalesAttributes: []emotion.Attribute{emotion.Attribute(99)}}
	if _, err := db.Assign(bad, sens(nil), 0.5, ByPriority); err == nil {
		t.Fatal("invalid sales attribute accepted")
	}
	s := sens(map[emotion.Attribute]float64{emotion.Shy: 0.9, emotion.Hopeful: 0.9})
	if _, err := db.Assign(product, s, 0.5, Policy(9)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSetPriorityUnknownAttribute(t *testing.T) {
	db := NewDB()
	if err := db.SetPriority(emotion.Attribute(42), 1); err == nil {
		t.Fatal("unknown attribute priority set")
	}
}

func TestCaseAndPolicyStrings(t *testing.T) {
	if CaseStandard.String() != "3.a" || CaseSingle.String() != "3.b" ||
		CaseMultiPriority.String() != "3.c.i" || CaseMultiSensibility.String() != "3.c.ii" {
		t.Fatal("case labels")
	}
	if ByPriority.String() != "by-priority" || BySensibility.String() != "by-sensibility" {
		t.Fatal("policy labels")
	}
}

func TestFig5ReproducesPaperCases(t *testing.T) {
	db := NewDB()
	samples, err := Fig5(db, "Course in Digital Marketing")
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("%d samples", len(samples))
	}
	// (a) case 3.b on enthusiastic.
	if samples[0].Case != CaseSingle || samples[0].Attributes[0] != emotion.Enthusiastic {
		t.Fatalf("Fig5(a): %+v", samples[0])
	}
	// (b) case 3.c.i, priority order lively > stimulated > shy > frightened.
	if samples[1].Case != CaseMultiPriority {
		t.Fatalf("Fig5(b) case %v", samples[1].Case)
	}
	wantOrder := []emotion.Attribute{emotion.Lively, emotion.Stimulated, emotion.Shy, emotion.Frightened}
	for i, a := range samples[1].Attributes {
		if a != wantOrder[i] {
			t.Fatalf("Fig5(b) order %v", samples[1].Attributes)
		}
	}
	// (c) case 3.c.ii, hopeful wins over motivated.
	if samples[2].Case != CaseMultiSensibility || samples[2].Attributes[0] != emotion.Hopeful {
		t.Fatalf("Fig5(c): %+v", samples[2])
	}
	for _, s := range samples {
		if !strings.Contains(s.Rendered, "Course in Digital Marketing") {
			t.Fatalf("sample %q not rendered", s.Label)
		}
	}
}

// Property: Assign never errors on valid inputs and always returns a
// rendered message containing the product name.
func TestAssignTotalProperty(t *testing.T) {
	db := NewDB()
	f := func(raw [emotion.NumAttributes]uint8, policyBit bool) bool {
		s := make([]float64, emotion.NumAttributes)
		for i, v := range raw {
			s[i] = float64(v) / 255
		}
		policy := ByPriority
		if policyBit {
			policy = BySensibility
		}
		asg, err := db.Assign(product, s, 0.5, policy)
		if err != nil {
			return false
		}
		if !strings.Contains(asg.Rendered, product.Name) {
			return false
		}
		switch asg.Case {
		case CaseStandard:
			return len(asg.Matched) == 0
		case CaseSingle:
			return len(asg.Matched) == 1
		case CaseMultiPriority, CaseMultiSensibility:
			return len(asg.Matched) >= 2
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAssign(b *testing.B) {
	db := NewDB()
	s := sens(map[emotion.Attribute]float64{
		emotion.Lively: 0.6, emotion.Stimulated: 0.7, emotion.Shy: 0.9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Assign(product, s, 0.5, ByPriority); err != nil {
			b.Fatal(err)
		}
	}
}
