// Package messaging implements the paper's Messaging Agent (§4 component 4,
// §5.3): the component that "automatically generate[s] emotional arguments
// from users' dominant attributes" — simulating the salesman who adapts the
// sales talk to each customer's sensibilities.
//
// The assignment logic is exactly §5.3 step 3 / Fig. 5:
//
//	(a)    no matching sensibility            → standard message,
//	(b)    exactly one match                  → that attribute's message,
//	(c.i)  several matches, ByPriority policy → highest-priority attribute,
//	(c.ii) several matches, BySensibility     → highest-sensibility attribute.
package messaging

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/emotion"
)

// Message is one sales-talk template, generated once per (product attribute)
// and stored in the message database (§5.3 step 2).
type Message struct {
	ID        int
	Attribute emotion.Attribute
	// Standard marks the fallback message (case 3.a); Attribute is ignored.
	Standard bool
	Template string
}

// Render fills the product name into the template.
func (m Message) Render(product string) string {
	return strings.ReplaceAll(m.Template, "{product}", product)
}

// Policy selects between the paper's two multi-match options.
type Policy int

const (
	// ByPriority is case 3.c.i: order product attributes by priority and
	// use the top one's message.
	ByPriority Policy = iota
	// BySensibility is case 3.c.ii: use the message of the attribute the
	// user is most sensitive to.
	BySensibility
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case ByPriority:
		return "by-priority"
	case BySensibility:
		return "by-sensibility"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Case identifies which §5.3 branch fired, for reporting and the Fig. 5
// reproduction.
type Case int

const (
	// CaseStandard is 3.a — no sensibilities match the product attributes.
	CaseStandard Case = iota
	// CaseSingle is 3.b — exactly one match.
	CaseSingle
	// CaseMultiPriority is 3.c.i.
	CaseMultiPriority
	// CaseMultiSensibility is 3.c.ii.
	CaseMultiSensibility
)

// String implements fmt.Stringer with the paper's case labels.
func (c Case) String() string {
	switch c {
	case CaseStandard:
		return "3.a"
	case CaseSingle:
		return "3.b"
	case CaseMultiPriority:
		return "3.c.i"
	case CaseMultiSensibility:
		return "3.c.ii"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// DB is the message database: one message per emotional attribute plus the
// standard fallback.
type DB struct {
	standard Message
	byAttr   map[emotion.Attribute]Message
	// priority orders attributes for ByPriority; higher value wins.
	priority map[emotion.Attribute]int
}

// NewDB builds the default message database with the reproduction's
// templates and a priority table. Priorities default to the attribute's
// base-valence magnitude ordering; SetPriority overrides.
func NewDB() *DB {
	db := &DB{
		byAttr:   make(map[emotion.Attribute]Message),
		priority: make(map[emotion.Attribute]int),
	}
	db.standard = Message{ID: 0, Standard: true,
		Template: "Discover {product} — a course selected for you from our catalogue."}
	templates := map[emotion.Attribute]string{
		emotion.Enthusiastic: "Jump right in! {product} is the course people can't stop talking about — join the excitement today.",
		emotion.Motivated:    "You set goals. {product} is how you reach the next one — enrol and keep the momentum.",
		emotion.Empathic:     "Learn alongside people like you: {product} has an active community helping each other succeed.",
		emotion.Hopeful:      "A better position is closer than you think — {product} opens that door.",
		emotion.Lively:       "Bring your energy: {product} is hands-on, fast-paced and never boring.",
		emotion.Stimulated:   "New ideas every lesson — {product} keeps your curiosity fed.",
		emotion.Impatient:    "No waiting: {product} starts immediately and you see results from week one.",
		emotion.Frightened:   "Take it at your own pace — {product} includes step-by-step guidance and a friendly tutor.",
		emotion.Shy:          "Study from home, no pressure: {product} lets you learn privately and shine quietly.",
		emotion.Apathetic:    "Ten minutes a day is enough — {product} fits effortlessly into your routine.",
	}
	id := 1
	for _, a := range emotion.AllAttributes() {
		db.byAttr[a] = Message{ID: id, Attribute: a, Template: templates[a]}
		// Default priority: scaled base-valence magnitude (approach first).
		db.priority[a] = int(100 * abs(float64(a.BaseValence())))
		id++
	}
	return db
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SetPriority overrides the priority of an attribute (higher wins in
// ByPriority assignments).
func (db *DB) SetPriority(a emotion.Attribute, p int) error {
	if _, ok := db.byAttr[a]; !ok {
		return fmt.Errorf("messaging: unknown attribute %v", a)
	}
	db.priority[a] = p
	return nil
}

// Priority returns an attribute's priority.
func (db *DB) Priority(a emotion.Attribute) int { return db.priority[a] }

// Standard returns the fallback message.
func (db *DB) Standard() Message { return db.standard }

// ForAttribute returns the message for an attribute.
func (db *DB) ForAttribute(a emotion.Attribute) (Message, error) {
	m, ok := db.byAttr[a]
	if !ok {
		return Message{}, fmt.Errorf("messaging: no message for attribute %v", a)
	}
	return m, nil
}

// Product describes the item being sold: the training course and the subset
// of emotional attributes usable as its sales arguments (§5.3 step 1).
type Product struct {
	Name string
	// SalesAttributes are the attributes selected for this course's talk.
	SalesAttributes []emotion.Attribute
}

// Validate checks the product definition.
func (p Product) Validate() error {
	if p.Name == "" {
		return errors.New("messaging: empty product name")
	}
	seen := map[emotion.Attribute]bool{}
	for _, a := range p.SalesAttributes {
		if int(a) < 0 || int(a) >= emotion.NumAttributes {
			return fmt.Errorf("messaging: invalid sales attribute %d", a)
		}
		if seen[a] {
			return fmt.Errorf("messaging: duplicate sales attribute %v", a)
		}
		seen[a] = true
	}
	return nil
}

// Assignment is the outcome for one user.
type Assignment struct {
	Case    Case
	Message Message
	// Matched lists the user's matching sensibilities, strongest first
	// (ByPriority: priority order; BySensibility: weight order).
	Matched []Match
	// Rendered is the final text.
	Rendered string
}

// Match pairs an attribute with the user's sensibility weight for it.
type Match struct {
	Attribute emotion.Attribute
	Weight    float64
}

// Assign implements §5.3 step 3. sensibilities is indexed by
// emotion.Attribute; threshold is the sensibility cutoff; policy picks the
// multi-match rule.
func (db *DB) Assign(p Product, sensibilities []float64, threshold float64, policy Policy) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	if len(sensibilities) != emotion.NumAttributes {
		return Assignment{}, fmt.Errorf("messaging: want %d sensibilities, got %d", emotion.NumAttributes, len(sensibilities))
	}
	var matched []Match
	for _, a := range p.SalesAttributes {
		if w := sensibilities[a]; w > threshold {
			matched = append(matched, Match{Attribute: a, Weight: w})
		}
	}
	switch len(matched) {
	case 0: // case 3.a
		msg := db.standard
		return Assignment{Case: CaseStandard, Message: msg, Rendered: msg.Render(p.Name)}, nil
	case 1: // case 3.b
		msg, err := db.ForAttribute(matched[0].Attribute)
		if err != nil {
			return Assignment{}, err
		}
		return Assignment{Case: CaseSingle, Message: msg, Matched: matched, Rendered: msg.Render(p.Name)}, nil
	}
	// case 3.c
	var kase Case
	switch policy {
	case ByPriority:
		kase = CaseMultiPriority
		sort.SliceStable(matched, func(i, j int) bool {
			pi, pj := db.priority[matched[i].Attribute], db.priority[matched[j].Attribute]
			if pi != pj {
				return pi > pj
			}
			return matched[i].Attribute < matched[j].Attribute
		})
	case BySensibility:
		kase = CaseMultiSensibility
		sort.SliceStable(matched, func(i, j int) bool {
			if matched[i].Weight != matched[j].Weight {
				return matched[i].Weight > matched[j].Weight
			}
			return matched[i].Attribute < matched[j].Attribute
		})
	default:
		return Assignment{}, fmt.Errorf("messaging: unknown policy %v", policy)
	}
	msg, err := db.ForAttribute(matched[0].Attribute)
	if err != nil {
		return Assignment{}, err
	}
	return Assignment{Case: kase, Message: msg, Matched: matched, Rendered: msg.Render(p.Name)}, nil
}

// Fig5Sample reproduces the paper's Figure 5: three users demonstrating
// cases 3.b, 3.c.i (lively > stimulated > shy > frightened by priority) and
// 3.c.ii (hopeful over motivated by sensibility).
type Fig5Sample struct {
	Label      string
	Case       Case
	Attributes []emotion.Attribute // matched attributes in report order
	Rendered   string
}

// Fig5 builds the three canonical samples of the paper's Figure 5 against
// the given product.
func Fig5(db *DB, productName string) ([]Fig5Sample, error) {
	product := Product{
		Name: productName,
		SalesAttributes: []emotion.Attribute{
			emotion.Enthusiastic, emotion.Motivated, emotion.Hopeful,
			emotion.Lively, emotion.Stimulated, emotion.Frightened, emotion.Shy,
		},
	}
	// Fig. 5(b) priority order: lively > stimulated > shy > frightened.
	for i, a := range []emotion.Attribute{emotion.Lively, emotion.Stimulated, emotion.Shy, emotion.Frightened} {
		if err := db.SetPriority(a, 400-i*100); err != nil {
			return nil, err
		}
	}
	mkSens := func(pairs map[emotion.Attribute]float64) []float64 {
		s := make([]float64, emotion.NumAttributes)
		for a, w := range pairs {
			s[a] = w
		}
		return s
	}
	type spec struct {
		label  string
		sens   map[emotion.Attribute]float64
		policy Policy
	}
	specs := []spec{
		// (a) "very much sensibility for the emotional attribute
		// enthusiastic" — single match, case 3.b.
		{"Fig5(a) single attribute (enthusiastic)", map[emotion.Attribute]float64{emotion.Enthusiastic: 0.95}, ByPriority},
		// (b) four attributes ordered by priority: lively, stimulated, shy,
		// frightened — case 3.c.i.
		{"Fig5(b) several attributes by priority", map[emotion.Attribute]float64{
			emotion.Lively: 0.6, emotion.Stimulated: 0.7, emotion.Shy: 0.8, emotion.Frightened: 0.65,
		}, ByPriority},
		// (c) motivated and hopeful; hopeful impacts most — case 3.c.ii.
		{"Fig5(c) several attributes by sensibility", map[emotion.Attribute]float64{
			emotion.Motivated: 0.7, emotion.Hopeful: 0.9,
		}, BySensibility},
	}
	var out []Fig5Sample
	for _, sp := range specs {
		asg, err := db.Assign(product, mkSens(sp.sens), 0.5, sp.policy)
		if err != nil {
			return nil, err
		}
		sample := Fig5Sample{Label: sp.label, Case: asg.Case, Rendered: asg.Rendered}
		for _, m := range asg.Matched {
			sample.Attributes = append(sample.Attributes, m.Attribute)
		}
		out = append(out, sample)
	}
	return out, nil
}
