// Package values implements the fifth SPA component of the paper's Fig. 3 —
// the Intelligent User Interface managing "an individualized and
// personalized Human Values Scale of each user in his/her life cycles"
// (§4 component 5, after Guzmán et al. 2005, the paper's [6]). The paper
// excludes it from the deployment description, so this package is the
// reproduction's optional extension; it provides the two capabilities the
// paper names:
//
//	(a) "the analysis of diverse values from the individualized scale of
//	     each user in real time", and
//	(b) "the definition of the coherence function between a user's actions
//	     and his/her implicit and explicit preferences".
//
// The scale follows Schwartz's ten basic human values, the instrument the
// Human Values Scale literature builds on.
package values

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Value is one of Schwartz's ten basic human values.
type Value int

const (
	Power Value = iota
	Achievement
	Hedonism
	Stimulation
	SelfDirection
	Universalism
	Benevolence
	Tradition
	Conformity
	Security

	// NumValues is the size of the Schwartz scale.
	NumValues = 10
)

var valueNames = [NumValues]string{
	"power", "achievement", "hedonism", "stimulation", "self-direction",
	"universalism", "benevolence", "tradition", "conformity", "security",
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v < 0 || int(v) >= NumValues {
		return fmt.Sprintf("Value(%d)", int(v))
	}
	return valueNames[v]
}

// AllValues returns the ten values in Schwartz order.
func AllValues() []Value {
	out := make([]Value, NumValues)
	for i := range out {
		out[i] = Value(i)
	}
	return out
}

// Scale is a normalized weight vector over the ten values (sums to 1).
type Scale [NumValues]float64

// Normalize rescales non-negative weights to sum 1; an all-zero scale
// becomes uniform.
func (s Scale) Normalize() Scale {
	var sum float64
	for i, w := range s {
		if w < 0 {
			s[i] = 0
		} else {
			sum += w
		}
	}
	if sum == 0 {
		for i := range s {
			s[i] = 1.0 / NumValues
		}
		return s
	}
	for i := range s {
		s[i] /= sum
	}
	return s
}

// Top returns the k strongest values, descending; ties break by Schwartz
// order.
func (s Scale) Top(k int) []Value {
	idx := AllValues()
	// Insertion sort over ten elements.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if s[b] > s[a] || (s[b] == s[a] && b < a) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Coherence is the paper's coherence function between two scales: cosine
// similarity in [0, 1] (both scales are non-negative). 1 means the user's
// actions perfectly express their stated preferences.
func Coherence(implicit, explicit Scale) float64 {
	var dot, na, nb float64
	for i := range implicit {
		dot += implicit[i] * explicit[i]
		na += implicit[i] * implicit[i]
		nb += explicit[i] * explicit[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Signature maps an observed action category to the values it expresses.
// Categories are free-form strings owned by the application ("enroll",
// "browse_fast_paced", "donate", ...).
type Signature map[string]Scale

// DefaultSignature covers the training-domain action categories of the
// business case.
func DefaultSignature() Signature {
	sig := Signature{}
	set := func(cat string, pairs map[Value]float64) {
		var s Scale
		for v, w := range pairs {
			s[v] = w
		}
		sig[cat] = s.Normalize()
	}
	set("enroll_career_course", map[Value]float64{Achievement: 0.5, Power: 0.2, SelfDirection: 0.3})
	set("enroll_hobby_course", map[Value]float64{Hedonism: 0.4, Stimulation: 0.4, SelfDirection: 0.2})
	set("enroll_language_course", map[Value]float64{SelfDirection: 0.4, Stimulation: 0.3, Universalism: 0.3})
	set("browse_new_topics", map[Value]float64{Stimulation: 0.6, SelfDirection: 0.4})
	set("request_certification_info", map[Value]float64{Achievement: 0.5, Security: 0.3, Conformity: 0.2})
	set("help_forum_answer", map[Value]float64{Benevolence: 0.7, Universalism: 0.3})
	set("repeat_known_provider", map[Value]float64{Security: 0.5, Tradition: 0.3, Conformity: 0.2})
	return sig
}

// Tracker maintains one user's individualized scale across their life
// cycle: an implicit scale accumulated from actions (exponentially decayed),
// an explicit scale from questionnaires, and scale snapshots for drift
// analysis.
type Tracker struct {
	implicitRaw Scale
	explicit    Scale
	hasExplicit bool
	sig         Signature
	// HalfLife controls forgetting of old action evidence.
	HalfLife  time.Duration
	updatedAt time.Time
	snapshots []Snapshot
}

// Snapshot is a dated copy of the implicit scale.
type Snapshot struct {
	Time  time.Time
	Scale Scale
}

// NewTracker creates a tracker with the given action-value signature (nil
// selects DefaultSignature) and evidence half-life (zero selects 180 days).
func NewTracker(sig Signature, halfLife time.Duration, now time.Time) *Tracker {
	if sig == nil {
		sig = DefaultSignature()
	}
	if halfLife <= 0 {
		halfLife = 180 * 24 * time.Hour
	}
	return &Tracker{sig: sig, HalfLife: halfLife, updatedAt: now}
}

// ErrUnknownCategory is returned for actions without a signature.
var ErrUnknownCategory = errors.New("values: unknown action category")

// Observe folds one action into the implicit scale with weight (evidence
// strength, > 0).
func (t *Tracker) Observe(category string, weight float64, now time.Time) error {
	if weight <= 0 {
		return errors.New("values: non-positive weight")
	}
	s, ok := t.sig[category]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCategory, category)
	}
	t.decay(now)
	for i := range t.implicitRaw {
		t.implicitRaw[i] += weight * s[i]
	}
	t.updatedAt = now
	return nil
}

func (t *Tracker) decay(now time.Time) {
	dt := now.Sub(t.updatedAt)
	if dt <= 0 {
		return
	}
	factor := math.Exp2(-dt.Hours() / t.HalfLife.Hours())
	for i := range t.implicitRaw {
		t.implicitRaw[i] *= factor
	}
}

// SetExplicit records the user's stated value preferences (questionnaire).
func (t *Tracker) SetExplicit(s Scale) {
	t.explicit = s.Normalize()
	t.hasExplicit = true
}

// Implicit returns the normalized action-derived scale.
func (t *Tracker) Implicit() Scale { return t.implicitRaw.Normalize() }

// Explicit returns the stated scale and whether one was recorded.
func (t *Tracker) Explicit() (Scale, bool) { return t.explicit, t.hasExplicit }

// Coherence evaluates the paper's coherence function for this user; an
// error is returned when no explicit scale exists to compare against.
func (t *Tracker) Coherence() (float64, error) {
	if !t.hasExplicit {
		return 0, errors.New("values: no explicit scale recorded")
	}
	return Coherence(t.Implicit(), t.explicit), nil
}

// TakeSnapshot stores a dated copy of the implicit scale for life-cycle
// analysis.
func (t *Tracker) TakeSnapshot(now time.Time) {
	t.decay(now)
	t.updatedAt = now
	t.snapshots = append(t.snapshots, Snapshot{Time: now, Scale: t.Implicit()})
}

// Snapshots returns the stored snapshots in order.
func (t *Tracker) Snapshots() []Snapshot {
	return append([]Snapshot(nil), t.snapshots...)
}

// Drift measures life-cycle change: 1 − coherence between the first and
// last snapshots. Zero means a stable value scale; requires two snapshots.
func (t *Tracker) Drift() (float64, error) {
	if len(t.snapshots) < 2 {
		return 0, errors.New("values: need at least two snapshots")
	}
	first := t.snapshots[0].Scale
	last := t.snapshots[len(t.snapshots)-1].Scale
	return 1 - Coherence(first, last), nil
}
