package values

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2006, 3, 14, 0, 0, 0, 0, time.UTC)

func TestValueStrings(t *testing.T) {
	if len(AllValues()) != NumValues {
		t.Fatal("value count")
	}
	seen := map[string]bool{}
	for _, v := range AllValues() {
		n := v.String()
		if n == "" || seen[n] {
			t.Fatalf("bad name %q", n)
		}
		seen[n] = true
	}
	if Value(99).String() == "power" {
		t.Fatal("invalid value has real name")
	}
}

func TestScaleNormalize(t *testing.T) {
	s := Scale{2, 0, 0, 0, 0, 0, 0, 0, 0, 2}
	n := s.Normalize()
	if n[Power] != 0.5 || n[Security] != 0.5 {
		t.Fatalf("normalized %v", n)
	}
	var sum float64
	for _, w := range n {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum %v", sum)
	}
}

func TestScaleNormalizeDegenerate(t *testing.T) {
	var zero Scale
	n := zero.Normalize()
	for _, w := range n {
		if math.Abs(w-0.1) > 1e-12 {
			t.Fatalf("all-zero normalize %v", n)
		}
	}
	// Negative weights are clipped.
	s := Scale{-5, 1}
	n = s.Normalize()
	if n[0] != 0 || n[1] != 1 {
		t.Fatalf("negatives not clipped: %v", n)
	}
}

func TestScaleTop(t *testing.T) {
	s := Scale{}
	s[Benevolence] = 0.5
	s[Achievement] = 0.3
	s[Security] = 0.2
	top := s.Top(2)
	if top[0] != Benevolence || top[1] != Achievement {
		t.Fatalf("top %v", top)
	}
	if len(s.Top(99)) != NumValues {
		t.Fatal("top clamp")
	}
}

func TestCoherenceBounds(t *testing.T) {
	a := Scale{1}.Normalize()
	if c := Coherence(a, a); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self coherence %v", c)
	}
	var b Scale
	b[Security] = 1
	if c := Coherence(a, b); c != 0 {
		t.Fatalf("orthogonal coherence %v", c)
	}
	var zero Scale
	if Coherence(zero, a) != 0 {
		t.Fatal("zero scale coherence")
	}
}

func TestCoherenceSymmetryProperty(t *testing.T) {
	f := func(raw [NumValues]uint8, raw2 [NumValues]uint8) bool {
		var a, b Scale
		for i := range raw {
			a[i] = float64(raw[i])
			b[i] = float64(raw2[i])
		}
		a = a.Normalize()
		b = b.Normalize()
		c1 := Coherence(a, b)
		c2 := Coherence(b, a)
		return math.Abs(c1-c2) < 1e-12 && c1 >= 0 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSignatureNormalized(t *testing.T) {
	sig := DefaultSignature()
	if len(sig) < 5 {
		t.Fatalf("only %d categories", len(sig))
	}
	for cat, s := range sig {
		var sum float64
		for _, w := range s {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("category %q not normalized: %v", cat, sum)
		}
	}
}

func TestTrackerObserve(t *testing.T) {
	tr := NewTracker(nil, 0, t0)
	if err := tr.Observe("help_forum_answer", 1, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	imp := tr.Implicit()
	if imp[Benevolence] < imp[Power] {
		t.Fatalf("benevolent action did not move scale: %v", imp)
	}
	if err := tr.Observe("unknown", 1, t0); !errors.Is(err, ErrUnknownCategory) {
		t.Fatalf("unknown category: %v", err)
	}
	if err := tr.Observe("help_forum_answer", 0, t0); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestTrackerCoherence(t *testing.T) {
	tr := NewTracker(nil, 0, t0)
	if _, err := tr.Coherence(); err == nil {
		t.Fatal("coherence without explicit scale")
	}
	// User claims to be an achiever...
	var stated Scale
	stated[Achievement] = 0.7
	stated[Power] = 0.3
	tr.SetExplicit(stated)
	// ...and acts like one.
	now := t0
	for i := 0; i < 10; i++ {
		now = now.Add(24 * time.Hour)
		tr.Observe("enroll_career_course", 1, now)
		tr.Observe("request_certification_info", 1, now)
	}
	cHigh, err := tr.Coherence()
	if err != nil {
		t.Fatal(err)
	}
	// A hedonist acting the same way would be incoherent.
	tr2 := NewTracker(nil, 0, t0)
	var hedonist Scale
	hedonist[Hedonism] = 1
	tr2.SetExplicit(hedonist)
	now = t0
	for i := 0; i < 10; i++ {
		now = now.Add(24 * time.Hour)
		tr2.Observe("enroll_career_course", 1, now)
	}
	cLow, _ := tr2.Coherence()
	if cHigh <= cLow {
		t.Fatalf("coherence does not discriminate: %v vs %v", cHigh, cLow)
	}
	if cHigh < 0.5 {
		t.Fatalf("aligned user coherence %v", cHigh)
	}
}

func TestTrackerDecay(t *testing.T) {
	tr := NewTracker(nil, 30*24*time.Hour, t0)
	tr.Observe("browse_new_topics", 10, t0)
	// Much later, one opposite action should dominate the decayed history.
	later := t0.Add(300 * 24 * time.Hour)
	tr.Observe("repeat_known_provider", 1, later)
	imp := tr.Implicit()
	if imp[Security] < imp[Stimulation] {
		t.Fatalf("old evidence did not decay: %v", imp)
	}
}

func TestTrackerSnapshotsAndDrift(t *testing.T) {
	tr := NewTracker(nil, 30*24*time.Hour, t0)
	if _, err := tr.Drift(); err == nil {
		t.Fatal("drift with no snapshots")
	}
	now := t0
	for i := 0; i < 5; i++ {
		now = now.Add(24 * time.Hour)
		tr.Observe("browse_new_topics", 1, now)
	}
	tr.TakeSnapshot(now)
	// Life change: the user turns conservative.
	for i := 0; i < 60; i++ {
		now = now.Add(5 * 24 * time.Hour)
		tr.Observe("repeat_known_provider", 1, now)
	}
	tr.TakeSnapshot(now)
	drift, err := tr.Drift()
	if err != nil {
		t.Fatal(err)
	}
	if drift < 0.2 {
		t.Fatalf("life-cycle change produced drift %v", drift)
	}
	if len(tr.Snapshots()) != 2 {
		t.Fatalf("%d snapshots", len(tr.Snapshots()))
	}

	// A stable user drifts little.
	tr2 := NewTracker(nil, 30*24*time.Hour, t0)
	now = t0
	tr2.Observe("help_forum_answer", 1, now)
	tr2.TakeSnapshot(now)
	for i := 0; i < 20; i++ {
		now = now.Add(24 * time.Hour)
		tr2.Observe("help_forum_answer", 1, now)
	}
	tr2.TakeSnapshot(now)
	stable, _ := tr2.Drift()
	if stable > 0.05 {
		t.Fatalf("stable user drift %v", stable)
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := NewTracker(nil, 0, t0)
	now := t0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Minute)
		if err := tr.Observe("browse_new_topics", 1, now); err != nil {
			b.Fatal(err)
		}
	}
}
