package ranking

import (
	"errors"
	"math"
	"sort"
)

// Additional evaluation curves beyond the paper's Fig. 6: precision–recall
// (the right lens for the 10 %-positive campaign regime), the Brier score
// for probability quality, and top-decile lift tables — the standard CRM
// report format of the paper's era.

// PRPoint is one precision–recall operating point.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PrecisionRecallCurve computes PR points at every distinct score
// threshold, descending. The first point is the highest-score prediction;
// the last covers everything.
func PrecisionRecallCurve(s []Scored) ([]PRPoint, error) {
	if len(s) == 0 {
		return nil, ErrEmpty
	}
	totalPos := 0
	for _, x := range s {
		if x.Responded {
			totalPos++
		}
	}
	if totalPos == 0 {
		return nil, errors.New("ranking: no responders")
	}
	idx := sortDesc(s)
	var out []PRPoint
	tp := 0
	for i, j := range idx {
		if s[j].Responded {
			tp++
		}
		// Emit a point only at the end of a tie group.
		if i+1 < len(idx) && s[idx[i+1]].Score == s[j].Score {
			continue
		}
		out = append(out, PRPoint{
			Threshold: s[j].Score,
			Precision: float64(tp) / float64(i+1),
			Recall:    float64(tp) / float64(totalPos),
		})
	}
	return out, nil
}

// AUPRC integrates the precision–recall curve by the step rule (precision
// envelope over recall increments).
func AUPRC(s []Scored) (float64, error) {
	pts, err := PrecisionRecallCurve(s)
	if err != nil {
		return 0, err
	}
	var area, prevRecall float64
	for _, p := range pts {
		area += p.Precision * (p.Recall - prevRecall)
		prevRecall = p.Recall
	}
	return area, nil
}

// Brier computes the mean squared error of probability forecasts; scores
// must be probabilities.
func Brier(s []Scored) (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range s {
		if x.Score < 0 || x.Score > 1 || math.IsNaN(x.Score) {
			return 0, errors.New("ranking: Brier needs probability scores")
		}
		y := 0.0
		if x.Responded {
			y = 1
		}
		d := x.Score - y
		sum += d * d
	}
	return sum / float64(len(s)), nil
}

// DecileRow is one row of the classic decile lift table.
type DecileRow struct {
	Decile     int // 1 = highest-scored tenth
	Count      int
	Responders int
	Rate       float64
	Lift       float64 // rate / base rate
	CumCapture float64 // cumulative share of all responders
}

// DecileTable splits the scored population into ten equal score-ordered
// bins and reports rate, lift and cumulative capture per decile.
func DecileTable(s []Scored) ([]DecileRow, error) {
	if len(s) < 10 {
		return nil, errors.New("ranking: need at least 10 observations")
	}
	base := BaseRate(s)
	totalResp := 0
	for _, x := range s {
		if x.Responded {
			totalResp++
		}
	}
	idx := sortDesc(s)
	rows := make([]DecileRow, 10)
	cum := 0
	for d := 0; d < 10; d++ {
		lo := d * len(s) / 10
		hi := (d + 1) * len(s) / 10
		row := DecileRow{Decile: d + 1, Count: hi - lo}
		for _, j := range idx[lo:hi] {
			if s[j].Responded {
				row.Responders++
			}
		}
		cum += row.Responders
		row.Rate = float64(row.Responders) / float64(row.Count)
		if base > 0 {
			row.Lift = row.Rate / base
		}
		if totalResp > 0 {
			row.CumCapture = float64(cum) / float64(totalResp)
		}
		rows[d] = row
	}
	return rows, nil
}

// KendallTau computes the rank correlation between two score vectors over
// the same items — used to compare two rankers head-to-head (e.g. SVM vs
// logistic orderings). O(n²); intended for sampled comparisons.
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("ranking: length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 0, errors.New("ranking: need at least 2 items")
	}
	var concordant, discordant float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			p := da * db
			switch {
			case p > 0:
				concordant++
			case p < 0:
				discordant++
			}
		}
	}
	pairs := float64(n*(n-1)) / 2
	return (concordant - discordant) / pairs, nil
}

// TopKOverlap is the Jaccard overlap of the two rankers' top-k sets —
// the operational question "would the two models contact the same people?".
func TopKOverlap(a, b []float64, k int) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("ranking: length mismatch")
	}
	if k < 1 || k > len(a) {
		return 0, errors.New("ranking: k out of range")
	}
	top := func(x []float64) map[int]bool {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(p, q int) bool { return x[idx[p]] > x[idx[q]] })
		out := make(map[int]bool, k)
		for _, i := range idx[:k] {
			out[i] = true
		}
		return out
	}
	ta, tb := top(a), top(b)
	inter := 0
	for i := range ta {
		if tb[i] {
			inter++
		}
	}
	return float64(inter) / float64(2*k-inter), nil
}
