package ranking

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// perfect returns a ranking where score order exactly matches response.
func perfect(n, nPos int) []Scored {
	s := make([]Scored, n)
	for i := range s {
		s[i] = Scored{Score: float64(n - i), Responded: i < nPos}
	}
	return s
}

// noisy returns scores correlated with response at the given signal level.
func noisy(n int, base, signal float64, seed uint64) []Scored {
	r := rng.New(seed)
	s := make([]Scored, n)
	for i := range s {
		resp := r.Bool(base)
		mu := 0.0
		if resp {
			mu = signal
		}
		s[i] = Scored{Score: mu + r.NormFloat64(), Responded: resp}
	}
	return s
}

func TestGainsCurvePerfectRanking(t *testing.T) {
	s := perfect(1000, 100) // 10% responders, perfectly ranked
	pts, err := GainsCurve(s, []float64{0.1, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].CapturedFrac != 1 {
		t.Fatalf("perfect ranking at 10%% captured %v", pts[0].CapturedFrac)
	}
	if pts[0].Redemption != 1 {
		t.Fatalf("perfect redemption %v", pts[0].Redemption)
	}
	if pts[2].CapturedFrac != 1 || math.Abs(pts[2].Redemption-0.1) > 1e-12 {
		t.Fatalf("full depth: %+v", pts[2])
	}
}

func TestGainsCurveRandomRankingDiagonal(t *testing.T) {
	r := rng.New(3)
	s := make([]Scored, 20000)
	for i := range s {
		s[i] = Scored{Score: r.Float64(), Responded: r.Bool(0.2)}
	}
	pts, err := GainsCurve(s, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].CapturedFrac-0.4) > 0.03 {
		t.Fatalf("random ranking at 40%% captured %v, want ~0.4", pts[0].CapturedFrac)
	}
}

func TestGainsCurveDefaultDepths(t *testing.T) {
	s := perfect(100, 10)
	pts, err := GainsCurve(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("default depths: %d points", len(pts))
	}
	// Monotone non-decreasing capture.
	for i := 1; i < len(pts); i++ {
		if pts[i].CapturedFrac < pts[i-1].CapturedFrac {
			t.Fatal("capture not monotone")
		}
	}
	if pts[len(pts)-1].CapturedFrac != 1 {
		t.Fatal("full depth must capture all")
	}
}

func TestGainsCurveErrors(t *testing.T) {
	if _, err := GainsCurve(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty accepted")
	}
	if _, err := GainsCurve(perfect(10, 2), []float64{0}); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := GainsCurve(perfect(10, 2), []float64{1.5}); err == nil {
		t.Fatal("depth >1 accepted")
	}
}

func TestCapturedAtAndLift(t *testing.T) {
	s := perfect(1000, 100)
	cap40, err := CapturedAt(s, 0.4)
	if err != nil || cap40 != 1 {
		t.Fatalf("captured@40 %v %v", cap40, err)
	}
	lift, err := Lift(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lift-10) > 1e-9 {
		t.Fatalf("lift@10 %v, want 10 (perfect ranking, 10%% base)", lift)
	}
}

func TestBaseRate(t *testing.T) {
	if BaseRate(perfect(100, 25)) != 0.25 {
		t.Fatal("base rate")
	}
	if BaseRate(nil) != 0 {
		t.Fatal("empty base rate")
	}
}

func TestAUCPerfect(t *testing.T) {
	auc, err := AUC(perfect(100, 30))
	if err != nil || auc != 1 {
		t.Fatalf("perfect AUC %v %v", auc, err)
	}
}

func TestAUCReversed(t *testing.T) {
	s := perfect(100, 30)
	for i := range s {
		s[i].Score = -s[i].Score
	}
	auc, _ := AUC(s)
	if auc != 0 {
		t.Fatalf("reversed AUC %v", auc)
	}
}

func TestAUCRandomNearHalf(t *testing.T) {
	s := noisy(20000, 0.3, 0, 7)
	auc, err := AUC(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.02 {
		t.Fatalf("no-signal AUC %v", auc)
	}
}

func TestAUCTiesMidrank(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 by midrank convention.
	s := []Scored{{1, true}, {1, false}, {1, true}, {1, false}}
	auc, err := AUC(s)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("all-ties AUC %v", auc)
	}
}

func TestAUCSingleClassError(t *testing.T) {
	s := []Scored{{1, true}, {2, true}}
	if _, err := AUC(s); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestPrecisionAtK(t *testing.T) {
	s := perfect(100, 10)
	p, err := PrecisionAtK(s, 10)
	if err != nil || p != 1 {
		t.Fatalf("P@10 %v %v", p, err)
	}
	p, _ = PrecisionAtK(s, 100)
	if p != 0.1 {
		t.Fatalf("P@100 %v", p)
	}
	if _, err := PrecisionAtK(s, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := PrecisionAtK(s, 101); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestAveragePrecision(t *testing.T) {
	ap, err := AveragePrecision(perfect(100, 10))
	if err != nil || ap != 1 {
		t.Fatalf("perfect AP %v %v", ap, err)
	}
	// No responders → 0.
	s := []Scored{{1, false}, {2, false}}
	ap, _ = AveragePrecision(s)
	if ap != 0 {
		t.Fatalf("no-responder AP %v", ap)
	}
}

func TestECEWellCalibrated(t *testing.T) {
	r := rng.New(11)
	s := make([]Scored, 50000)
	for i := range s {
		p := r.Float64()
		s[i] = Scored{Score: p, Responded: r.Bool(p)}
	}
	ece, err := ECE(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 0.01 {
		t.Fatalf("well-calibrated ECE %v", ece)
	}
}

func TestECEMiscalibrated(t *testing.T) {
	s := make([]Scored, 1000)
	for i := range s {
		s[i] = Scored{Score: 0.9, Responded: i%10 == 0} // says 90%, is 10%
	}
	ece, _ := ECE(s, 10)
	if ece < 0.7 {
		t.Fatalf("miscalibrated ECE %v", ece)
	}
}

func TestECERejectsNonProbabilities(t *testing.T) {
	if _, err := ECE([]Scored{{Score: 2}}, 10); err == nil {
		t.Fatal("score >1 accepted")
	}
	if _, err := ECE([]Scored{{Score: -0.1}}, 10); err == nil {
		t.Fatal("negative score accepted")
	}
}

func TestBootstrapCI(t *testing.T) {
	s := noisy(2000, 0.3, 1.5, 13)
	point, err := AUC(s)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := BootstrapCI(s, func(x []Scored) (float64, error) { return AUC(x) }, 200, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= point && point <= hi) {
		t.Fatalf("CI [%v,%v] excludes point %v", lo, hi, point)
	}
	if hi-lo <= 0 || hi-lo > 0.2 {
		t.Fatalf("CI width %v implausible", hi-lo)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	s := noisy(100, 0.3, 1, 1)
	if _, _, err := BootstrapCI(nil, nil, 100, 0.95, 1); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := BootstrapCI(s, func(x []Scored) (float64, error) { return 0, nil }, 5, 0.95, 1); err == nil {
		t.Fatal("too few resamples accepted")
	}
	if _, _, err := BootstrapCI(s, func(x []Scored) (float64, error) { return 0, nil }, 100, 1.5, 1); err == nil {
		t.Fatal("bad level accepted")
	}
}

// Property: gains capture is monotone in depth and redemption never exceeds 1.
func TestGainsMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := noisy(500, 0.2, 1, seed)
		pts, err := GainsCurve(s, nil)
		if err != nil {
			return false
		}
		prev := 0.0
		for _, p := range pts {
			if p.CapturedFrac < prev || p.Redemption < 0 || p.Redemption > 1 {
				return false
			}
			prev = p.CapturedFrac
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: AUC is within [0,1] and flipping all scores maps a to 1-a.
func TestAUCFlipProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := noisy(300, 0.3, 0.8, seed)
		a1, err := AUC(s)
		if err != nil {
			return true // degenerate single-class draw
		}
		flipped := make([]Scored, len(s))
		for i, x := range s {
			flipped[i] = Scored{Score: -x.Score, Responded: x.Responded}
		}
		a2, err := AUC(flipped)
		if err != nil {
			return false
		}
		return a1 >= 0 && a1 <= 1 && math.Abs(a1+a2-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGainsCurve(b *testing.B) {
	s := noisy(100000, 0.2, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GainsCurve(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAUC(b *testing.B) {
	s := noisy(100000, 0.2, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AUC(s); err != nil {
			b.Fatal(err)
		}
	}
}
