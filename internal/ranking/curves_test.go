package ranking

import (
	"math"
	"testing"
)

func TestPrecisionRecallPerfect(t *testing.T) {
	s := perfect(100, 20)
	pts, err := PrecisionRecallCurve(s)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect ranking: precision stays 1 until recall hits 1.
	for _, p := range pts {
		if p.Recall < 1 && p.Precision != 1 {
			t.Fatalf("perfect PR dipped early: %+v", p)
		}
	}
	last := pts[len(pts)-1]
	if last.Recall != 1 || math.Abs(last.Precision-0.2) > 1e-12 {
		t.Fatalf("final point %+v", last)
	}
}

func TestPrecisionRecallErrors(t *testing.T) {
	if _, err := PrecisionRecallCurve(nil); err == nil {
		t.Fatal("empty accepted")
	}
	s := []Scored{{1, false}, {2, false}}
	if _, err := PrecisionRecallCurve(s); err == nil {
		t.Fatal("no responders accepted")
	}
}

func TestAUPRC(t *testing.T) {
	// Perfect ranking → AUPRC 1.
	a, err := AUPRC(perfect(100, 20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-9 {
		t.Fatalf("perfect AUPRC %v", a)
	}
	// No-signal ranking → AUPRC ≈ base rate.
	s := noisy(20000, 0.2, 0, 3)
	a2, err := AUPRC(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a2-0.2) > 0.03 {
		t.Fatalf("no-signal AUPRC %v, want ~0.2", a2)
	}
}

func TestBrier(t *testing.T) {
	// Perfect forecasts → 0.
	s := []Scored{{1, true}, {0, false}}
	b, err := Brier(s)
	if err != nil || b != 0 {
		t.Fatalf("perfect Brier %v %v", b, err)
	}
	// Always-wrong forecasts → 1.
	s = []Scored{{0, true}, {1, false}}
	b, _ = Brier(s)
	if b != 1 {
		t.Fatalf("worst Brier %v", b)
	}
	if _, err := Brier([]Scored{{2, true}}); err == nil {
		t.Fatal("non-probability accepted")
	}
	if _, err := Brier(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestDecileTable(t *testing.T) {
	s := perfect(1000, 100)
	rows, err := DecileTable(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	// Perfect ranking: decile 1 holds every responder.
	if rows[0].Responders != 100 || rows[0].Rate != 1 {
		t.Fatalf("decile 1: %+v", rows[0])
	}
	if math.Abs(rows[0].Lift-10) > 1e-9 {
		t.Fatalf("decile 1 lift %v", rows[0].Lift)
	}
	if rows[0].CumCapture != 1 || rows[9].CumCapture != 1 {
		t.Fatal("cumulative capture")
	}
	for d := 1; d < 10; d++ {
		if rows[d].Responders != 0 {
			t.Fatalf("decile %d has responders", d+1)
		}
	}
	total := 0
	for _, r := range rows {
		total += r.Count
	}
	if total != 1000 {
		t.Fatalf("decile counts sum %d", total)
	}
	if _, err := DecileTable(perfect(5, 1)); err == nil {
		t.Fatal("tiny input accepted")
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{3, 2, 1}
	tau, err := KendallTau(a, a)
	if err != nil || tau != 1 {
		t.Fatalf("self tau %v %v", tau, err)
	}
	rev := []float64{1, 2, 3}
	tau, _ = KendallTau(a, rev)
	if tau != -1 {
		t.Fatalf("reversed tau %v", tau)
	}
	if _, err := KendallTau(a, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single item accepted")
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{9, 8, 7, 1, 2, 3}
	b := []float64{9, 8, 0, 1, 2, 7}
	// Top-3 of a = {0,1,2}; of b = {0,1,5} → intersection 2, union 4.
	o, err := TopKOverlap(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o-0.5) > 1e-12 {
		t.Fatalf("overlap %v", o)
	}
	if o2, _ := TopKOverlap(a, a, 3); o2 != 1 {
		t.Fatalf("self overlap %v", o2)
	}
	if _, err := TopKOverlap(a, b, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TopKOverlap(a, []float64{1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkDecileTable(b *testing.B) {
	s := noisy(100000, 0.2, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecileTable(s); err != nil {
			b.Fatal(err)
		}
	}
}
