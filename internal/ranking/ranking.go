// Package ranking implements the evaluation machinery behind the paper's
// Figure 6: cumulative redemption (gains) curves, lift, AUC, precision@k,
// average precision, calibration error and bootstrap confidence intervals.
//
// Terminology follows the paper: "commercial action" is the fraction of the
// target population contacted (x-axis of Fig. 6a); "useful impacts" are
// responders reached (y-axis); "redemption" is the responder rate among
// those contacted; "predictive score" is the per-campaign response rate
// achieved by the selection function (Fig. 6b).
package ranking

import (
	"errors"
	"math"
	"sort"

	"repro/internal/rng"
)

// Scored pairs a model score with the ground-truth response.
type Scored struct {
	Score     float64
	Responded bool
}

// ErrEmpty is returned when an input has no observations.
var ErrEmpty = errors.New("ranking: empty input")

// sortDesc returns indices sorted by descending score; equal scores keep
// input order (stable), making every metric deterministic.
func sortDesc(s []Scored) []int {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s[idx[a]].Score > s[idx[b]].Score })
	return idx
}

// GainsPoint is one point of the cumulative redemption curve.
type GainsPoint struct {
	// ContactedFrac is the fraction of the population contacted (0, 1].
	ContactedFrac float64
	// CapturedFrac is the fraction of all responders reached.
	CapturedFrac float64
	// Redemption is responders-so-far / contacted-so-far.
	Redemption float64
}

// GainsCurve computes the cumulative redemption curve at the given contact
// depths (fractions in (0,1], ascending; nil selects 5 %..100 % in 5 %
// steps) — the reproduction of Fig. 6(a).
func GainsCurve(s []Scored, depths []float64) ([]GainsPoint, error) {
	if len(s) == 0 {
		return nil, ErrEmpty
	}
	if depths == nil {
		for d := 0.05; d <= 1.0001; d += 0.05 {
			depths = append(depths, math.Min(d, 1))
		}
	}
	totalResp := 0
	for _, x := range s {
		if x.Responded {
			totalResp++
		}
	}
	idx := sortDesc(s)
	// Prefix responder counts.
	prefix := make([]int, len(s)+1)
	for i, j := range idx {
		prefix[i+1] = prefix[i]
		if s[j].Responded {
			prefix[i+1]++
		}
	}
	var out []GainsPoint
	for _, d := range depths {
		if d <= 0 || d > 1 {
			return nil, errors.New("ranking: depth out of (0,1]")
		}
		k := int(math.Round(d * float64(len(s))))
		if k < 1 {
			k = 1
		}
		if k > len(s) {
			k = len(s)
		}
		p := GainsPoint{ContactedFrac: float64(k) / float64(len(s))}
		p.Redemption = float64(prefix[k]) / float64(k)
		if totalResp > 0 {
			p.CapturedFrac = float64(prefix[k]) / float64(totalResp)
		}
		out = append(out, p)
	}
	return out, nil
}

// CapturedAt returns the fraction of responders captured at the given
// contact depth — the paper's "with the 40 % of commercial action, SPA
// achieves more than 76 % of useful impacts" check.
func CapturedAt(s []Scored, depth float64) (float64, error) {
	pts, err := GainsCurve(s, []float64{depth})
	if err != nil {
		return 0, err
	}
	return pts[0].CapturedFrac, nil
}

// Lift returns redemption-at-depth divided by the base rate.
func Lift(s []Scored, depth float64) (float64, error) {
	pts, err := GainsCurve(s, []float64{depth})
	if err != nil {
		return 0, err
	}
	base := BaseRate(s)
	if base == 0 {
		return 0, nil
	}
	return pts[0].Redemption / base, nil
}

// BaseRate is the overall response rate.
func BaseRate(s []Scored) float64 {
	if len(s) == 0 {
		return 0
	}
	n := 0
	for _, x := range s {
		if x.Responded {
			n++
		}
	}
	return float64(n) / float64(len(s))
}

// AUC computes the area under the ROC curve via the rank-sum formulation
// with midrank tie handling.
func AUC(s []Scored) (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmpty
	}
	type sv struct {
		score float64
		pos   bool
	}
	v := make([]sv, len(s))
	nPos, nNeg := 0, 0
	for i, x := range s {
		v[i] = sv{x.Score, x.Responded}
		if x.Responded {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, errors.New("ranking: AUC needs both classes")
	}
	sort.Slice(v, func(i, j int) bool { return v[i].score < v[j].score })
	// Midranks over tie groups.
	var rankSumPos float64
	i := 0
	for i < len(v) {
		j := i
		for j < len(v) && v[j].score == v[i].score {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			if v[k].pos {
				rankSumPos += midrank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// PrecisionAtK is the responder rate within the top-k scored users.
func PrecisionAtK(s []Scored, k int) (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmpty
	}
	if k < 1 || k > len(s) {
		return 0, errors.New("ranking: k out of range")
	}
	idx := sortDesc(s)
	hits := 0
	for _, j := range idx[:k] {
		if s[j].Responded {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// AveragePrecision computes AP over the full ranking.
func AveragePrecision(s []Scored) (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmpty
	}
	idx := sortDesc(s)
	hits := 0
	var sum float64
	for rank, j := range idx {
		if s[j].Responded {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	if hits == 0 {
		return 0, nil
	}
	return sum / float64(hits), nil
}

// ECE computes the expected calibration error over equal-width probability
// bins; scores must be probabilities in [0,1].
func ECE(s []Scored, bins int) (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmpty
	}
	if bins < 2 {
		bins = 10
	}
	type bin struct {
		n    int
		conf float64
		hits int
	}
	bs := make([]bin, bins)
	for _, x := range s {
		if x.Score < 0 || x.Score > 1 || math.IsNaN(x.Score) {
			return 0, errors.New("ranking: ECE needs probability scores")
		}
		b := int(x.Score * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		bs[b].n++
		bs[b].conf += x.Score
		if x.Responded {
			bs[b].hits++
		}
	}
	var ece float64
	n := float64(len(s))
	for _, b := range bs {
		if b.n == 0 {
			continue
		}
		acc := float64(b.hits) / float64(b.n)
		conf := b.conf / float64(b.n)
		ece += float64(b.n) / n * math.Abs(acc-conf)
	}
	return ece, nil
}

// BootstrapCI estimates a percentile confidence interval for a metric via
// nonparametric bootstrap with B resamples.
func BootstrapCI(s []Scored, metric func([]Scored) (float64, error), b int, level float64, seed uint64) (lo, hi float64, err error) {
	if len(s) == 0 {
		return 0, 0, ErrEmpty
	}
	if b < 10 {
		return 0, 0, errors.New("ranking: need at least 10 resamples")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, errors.New("ranking: level out of (0,1)")
	}
	r := rng.New(seed)
	vals := make([]float64, 0, b)
	resample := make([]Scored, len(s))
	for i := 0; i < b; i++ {
		for j := range resample {
			resample[j] = s[r.Intn(len(s))]
		}
		v, err := metric(resample)
		if err != nil {
			continue // degenerate resample (e.g. single class); skip
		}
		vals = append(vals, v)
	}
	if len(vals) < b/2 {
		return 0, 0, errors.New("ranking: too many degenerate resamples")
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(len(vals)))
	hiIdx := int((1 - alpha) * float64(len(vals)))
	if hiIdx >= len(vals) {
		hiIdx = len(vals) - 1
	}
	return vals[loIdx], vals[hiIdx], nil
}
