package scalebench

import (
	"net/http/httptest"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/server"
)

// TestS6Smoke runs a miniature of spabench's [S6] section: the zipf +
// diurnal mixed-endpoint scenario replay against a live pipelined stack.
// Both the write side and the read side must deliver without errors, and
// the replay must actually be skewed and actually mixed.
func TestS6Smoke(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{Pipeline: true})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
		spa.Close()
	}()

	res, err := RunScenario(ScenarioConfig{
		BaseURL:  ts.URL,
		Seed:     11,
		Users:    64,
		Clients:  4,
		Sessions: 64,
		Register: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("scenario errors: %+v", res)
	}
	if res.Sessions != 64 {
		t.Fatalf("sessions %d, want 64", res.Sessions)
	}
	if res.Events == 0 || res.WriteOps < res.Sessions {
		t.Fatalf("write side did not run: %+v", res)
	}
	if res.ReadOps == 0 {
		t.Fatalf("read side did not run: %+v", res)
	}
	if res.WriteP50 <= 0 || res.WriteP99 < res.WriteP50 || res.ReadP50 <= 0 || res.ReadP99 < res.ReadP50 {
		t.Fatalf("degenerate latency measurements: %+v", res)
	}
	if res.WriteEventsPerSec <= 0 || res.ReadOpsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
	// Zipf skew must be visible: the hottest 1% (here: 1 of 64 users) owns
	// well more than a uniform 1/64 share of sessions.
	if res.Top1PctShare < 2.0/64 {
		t.Fatalf("replay not skewed: top-1%% share %.3f", res.Top1PctShare)
	}
}

// TestScenarioPlansDeterministic pins that a seed fully determines the
// replay content — the repro contract spabench -torture and [S6] print
// seeds for.
func TestScenarioPlansDeterministic(t *testing.T) {
	cfg := ScenarioConfig{Seed: 7, Users: 32, Sessions: 40, ZipfS: 1.07}
	popA, err := synthPop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	popB, _ := synthPop(cfg)
	plansA, shareA := buildSessionPlans(cfg, popA)
	plansB, shareB := buildSessionPlans(cfg, popB)
	if shareA != shareB || len(plansA) != len(plansB) {
		t.Fatalf("plan shape diverged: %f/%d vs %f/%d", shareA, len(plansA), shareB, len(plansB))
	}
	for i := range plansA {
		a, b := plansA[i], plansB[i]
		if a.user != b.user || a.recommend != b.recommend || a.question != b.question ||
			a.reward != b.reward || a.attr != b.attr || len(a.actions) != len(b.actions) {
			t.Fatalf("session %d diverged: %+v vs %+v", i, a, b)
		}
		for k := range a.actions {
			if a.actions[k] != b.actions[k] || a.types[k] != b.types[k] {
				t.Fatalf("session %d event %d diverged", i, k)
			}
		}
	}
}
