package scalebench

import (
	"net"
	"net/http/httptest"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/server"
)

// TestS6Smoke runs a miniature of spabench's [S6] section: the zipf +
// diurnal mixed-endpoint scenario replay against a live pipelined stack.
// Both the write side and the read side must deliver without errors, and
// the replay must actually be skewed and actually mixed.
func TestS6Smoke(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{Pipeline: true})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
		spa.Close()
	}()

	res, err := RunScenario(ScenarioConfig{
		BaseURL:  ts.URL,
		Seed:     11,
		Users:    64,
		Clients:  4,
		Sessions: 64,
		Register: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("scenario errors: %+v", res)
	}
	if res.Sessions != 64 {
		t.Fatalf("sessions %d, want 64", res.Sessions)
	}
	if res.Events == 0 || res.WriteOps < res.Sessions {
		t.Fatalf("write side did not run: %+v", res)
	}
	if res.ReadOps == 0 {
		t.Fatalf("read side did not run: %+v", res)
	}
	if res.WriteP50 <= 0 || res.WriteP99 < res.WriteP50 || res.ReadP50 <= 0 || res.ReadP99 < res.ReadP50 {
		t.Fatalf("degenerate latency measurements: %+v", res)
	}
	if res.WriteEventsPerSec <= 0 || res.ReadOpsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
	// Zipf skew must be visible: the hottest 1% (here: 1 of 64 users) owns
	// well more than a uniform 1/64 share of sessions.
	if res.Top1PctShare < 2.0/64 {
		t.Fatalf("replay not skewed: top-1%% share %.3f", res.Top1PctShare)
	}
}

// TestScenarioClusterSmoke replays the scenario against a 2-node cluster
// through the multi-endpoint + topology-routing path the [S9] section
// uses: every session must land without errors (no unretried 421s), and
// the population must actually split across both nodes.
func TestScenarioClusterSmoke(t *testing.T) {
	ids := []string{"a", "b"}
	peers := make(map[string]string, len(ids))
	listeners := make(map[string]net.Listener, len(ids))
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[id] = ln
		peers[id] = ln.Addr().String()
	}
	spas := make(map[string]*core.SPA, len(ids))
	var endpoints []string
	for _, id := range ids {
		spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(spa, server.Options{
			Pipeline:      true,
			ClusterNodeID: id,
			ClusterAddr:   peers[id],
			ClusterPeers:  peers,
		})
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = listeners[id]
		ts.Start()
		defer func() {
			ts.Close()
			srv.Close()
			spa.Close()
		}()
		spas[id] = spa
		endpoints = append(endpoints, "http://"+peers[id])
	}

	res, err := RunScenario(ScenarioConfig{
		Endpoints: endpoints,
		Cluster:   true,
		Seed:      11,
		Users:     64,
		Clients:   4,
		Sessions:  64,
		Register:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("cluster scenario errors: %+v", res)
	}
	if res.Events == 0 || res.ReadOps == 0 {
		t.Fatalf("replay did not exercise both paths: %+v", res)
	}
	na, nb := spas["a"].Users(), spas["b"].Users()
	if na+nb != 64 || na == 0 || nb == 0 {
		t.Fatalf("population split %d/%d, want all 64 users spread across both nodes", na, nb)
	}
}

// TestScenarioPlansDeterministic pins that a seed fully determines the
// replay content — the repro contract spabench -torture and [S6] print
// seeds for.
func TestScenarioPlansDeterministic(t *testing.T) {
	cfg := ScenarioConfig{Seed: 7, Users: 32, Sessions: 40, ZipfS: 1.07}
	popA, err := synthPop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	popB, _ := synthPop(cfg)
	plansA, shareA := buildSessionPlans(cfg, popA)
	plansB, shareB := buildSessionPlans(cfg, popB)
	if shareA != shareB || len(plansA) != len(plansB) {
		t.Fatalf("plan shape diverged: %f/%d vs %f/%d", shareA, len(plansA), shareB, len(plansB))
	}
	for i := range plansA {
		a, b := plansA[i], plansB[i]
		if a.user != b.user || a.recommend != b.recommend || a.question != b.question ||
			a.reward != b.reward || a.attr != b.attr || len(a.actions) != len(b.actions) {
			t.Fatalf("session %d diverged: %+v vs %+v", i, a, b)
		}
		for k := range a.actions {
			if a.actions[k] != b.actions[k] || a.types[k] != b.types[k] {
				t.Fatalf("session %d event %d diverged", i, k)
			}
		}
	}
}
