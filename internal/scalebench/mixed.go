package scalebench

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lifelog"
	"repro/internal/rng"
	"repro/internal/spaclient"
)

// The [S7] harness: a read-heavy mixed workload. The scenario replay [S6]
// interleaves reads and writes in session order, which measures a deployed
// traffic shape but ties the read rate to the session script. [S7] instead
// pins the mix at a fixed read fraction (90/10 per the roadmap) and drives
// both sides as fast as the daemon allows, so the read tail directly
// exposes whether reads wait behind writers: under the epoch-snapshot read
// path (DESIGN.md §8) a read never takes a shard lock and its p99 stays at
// in-memory scale even while commits hold shard write locks across fsync;
// under the -locked-reads baseline every read that lands on a committing
// shard inherits the fsync latency.
//
// Each client lane owns a disjoint user span for writes (per-user event
// order stays monotone without cross-lane coordination, exactly the
// loadgen's lane model) while reads target the whole population uniformly,
// so readers and writers collide on shards by construction.

// MixedConfig parameterizes one mixed read/write run.
type MixedConfig struct {
	// BaseURL locates the daemon.
	BaseURL string
	// Seed derives every lane's operation sequence.
	Seed uint64
	// Users is the population size (default Users). Writes partition it
	// across lanes; reads draw from all of it.
	Users int
	// Clients is the number of concurrent lanes (default Workers).
	Clients int
	// Ops is the total operation count across lanes (default 400).
	Ops int
	// ReadFraction is the probability an operation is a read (default 0.9).
	ReadFraction float64
	// EventsPerWrite sizes each write burst (default 8).
	EventsPerWrite int
	// TopK is the select-top depth (default 10).
	TopK int
	// Register creates the population first (conflicts on rerun are fine).
	Register bool
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// ReadFrom lists follower base URLs; when set, every lane's client
	// spreads its reads round-robin across the primary and these replicas
	// ([S8] — the two-node read-scaling measurement). Writes always go to
	// BaseURL.
	ReadFrom []string
	// MaxStalenessWaves bounds how far a follower may lag and still take
	// routed reads (spaclient.Options.MaxStalenessWaves).
	MaxStalenessWaves uint64
}

// MixedResult is one mixed run's measurement, split like the scenario
// result so both serving paths report throughput and tail latency.
type MixedResult struct {
	Ops      int `json:"ops"`
	ReadOps  int `json:"read_ops"`
	WriteOps int `json:"write_ops"`
	Events   int `json:"events"`
	// ColdReads counts reads answered 409 before the CF or propensity model
	// was ready — expected early in a run, not errors.
	ColdReads int           `json:"cold_reads"`
	Errors    int           `json:"errors"`
	Duration  time.Duration `json:"duration_ns"`

	ReadOpsPerSec     float64       `json:"read_ops_per_sec"`
	WriteEventsPerSec float64       `json:"write_events_per_sec"`
	ReadP50           time.Duration `json:"read_p50_ns"`
	ReadP95           time.Duration `json:"read_p95_ns"`
	ReadP99           time.Duration `json:"read_p99_ns"`
	WriteP50          time.Duration `json:"write_p50_ns"`
	WriteP95          time.Duration `json:"write_p95_ns"`
	WriteP99          time.Duration `json:"write_p99_ns"`
}

// mixedLaneStats is one lane's tally, merged after the barrier.
type mixedLaneStats struct {
	readLat  []time.Duration
	writeLat []time.Duration
	events   int
	cold     int
	errs     int
}

// RunMixed drives the fixed-fraction mixed workload against a live daemon.
// Setup failures return an error; per-operation failures are counted in
// Errors so one refused request does not void the measurement.
func RunMixed(cfg MixedConfig) (MixedResult, error) {
	if cfg.BaseURL == "" {
		return MixedResult{}, errors.New("scalebench: mixed run needs a base URL")
	}
	if cfg.Users <= 0 {
		cfg.Users = Users
	}
	if cfg.Clients <= 0 {
		cfg.Clients = Workers
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if cfg.ReadFraction <= 0 || cfg.ReadFraction >= 1 {
		cfg.ReadFraction = 0.9
	}
	if cfg.EventsPerWrite <= 0 {
		cfg.EventsPerWrite = 8
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Users < cfg.Clients {
		return MixedResult{}, fmt.Errorf("scalebench: %d users cannot span %d lanes", cfg.Users, cfg.Clients)
	}

	clients := make([]*spaclient.Client, cfg.Clients)
	for i := range clients {
		clients[i] = spaclient.New(cfg.BaseURL, spaclient.Options{
			Timeout:           cfg.Timeout,
			ReadFrom:          cfg.ReadFrom,
			MaxStalenessWaves: cfg.MaxStalenessWaves,
		})
	}
	if cfg.Register {
		if err := registerPopulation(clients, cfg.Users); err != nil {
			return MixedResult{}, err
		}
	}

	span := cfg.Users / cfg.Clients
	stats := make([]mixedLaneStats, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for lane := 0; lane < cfg.Clients; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			runMixedLane(cfg, clients[lane], lane, span, &stats[lane])
		}(lane)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := MixedResult{Duration: elapsed}
	var readLat, writeLat []time.Duration
	for i := range stats {
		readLat = append(readLat, stats[i].readLat...)
		writeLat = append(writeLat, stats[i].writeLat...)
		res.Events += stats[i].events
		res.ColdReads += stats[i].cold
		res.Errors += stats[i].errs
	}
	res.ReadOps = len(readLat)
	res.WriteOps = len(writeLat)
	res.Ops = res.ReadOps + res.WriteOps
	sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
	sort.Slice(writeLat, func(i, j int) bool { return writeLat[i] < writeLat[j] })
	if secs := elapsed.Seconds(); secs > 0 {
		res.ReadOpsPerSec = float64(res.ReadOps) / secs
		res.WriteEventsPerSec = float64(res.Events) / secs
	}
	res.ReadP50 = percentile(readLat, 0.50)
	res.ReadP95 = percentile(readLat, 0.95)
	res.ReadP99 = percentile(readLat, 0.99)
	res.WriteP50 = percentile(writeLat, 0.50)
	res.WriteP95 = percentile(writeLat, 0.95)
	res.WriteP99 = percentile(writeLat, 0.99)
	return res, nil
}

// runMixedLane executes one lane's share of the operation budget. Writes
// stay inside the lane's user span with a lane-local monotone clock;
// reads draw from the whole population.
func runMixedLane(cfg MixedConfig, c *spaclient.Client, lane, span int, st *mixedLaneStats) {
	r := rng.New(cfg.Seed ^ (uint64(lane)+1)*0x9e3779b97f4a7c15)
	ops := cfg.Ops / cfg.Clients
	if lane < cfg.Ops%cfg.Clients {
		ops++
	}
	base := uint64(lane * span)
	cursor := clock.Epoch
	next := 0 // round-robin write target within the span
	for op := 0; op < ops; op++ {
		if r.Bool(cfg.ReadFraction) {
			user := uint64(r.Intn(cfg.Users) + 1)
			t0 := time.Now()
			err := mixedRead(c, r, user, cfg.TopK)
			lat := time.Since(t0)
			switch {
			case err == nil:
				st.readLat = append(st.readLat, lat)
			case isStatus(err, http.StatusConflict):
				st.cold++
				st.readLat = append(st.readLat, lat)
			default:
				st.errs++
			}
			continue
		}
		events := make([]lifelog.Event, cfg.EventsPerWrite)
		for i := range events {
			id := base + uint64(next+1)
			next = (next + 1) % span
			cursor = cursor.Add(time.Second)
			events[i] = lifelog.Event{
				UserID: id,
				Time:   cursor,
				Type:   lifelog.EventClick,
				Action: uint32(r.Intn(lifelog.ActionUniverse)),
			}
		}
		t0 := time.Now()
		resp, err := c.Ingest(events)
		lat := time.Since(t0)
		if err != nil {
			st.errs++
			continue
		}
		st.writeLat = append(st.writeLat, lat)
		st.events += resp.Processed
	}
}

// mixedRead issues one read from the [S7] mix: recommendation pulls
// dominate, with advice, propensity, and select-top filling out the
// non-ingest read surface.
func mixedRead(c *spaclient.Client, r *rng.RNG, user uint64, topK int) error {
	switch roll := r.Intn(100); {
	case roll < 50:
		_, err := c.Recommend(user, 10)
		return err
	case roll < 70:
		_, err := c.Advise(user, "training")
		return err
	case roll < 90:
		_, err := c.Propensity(user)
		return err
	default:
		_, err := c.SelectTop(topK)
		return err
	}
}
