package scalebench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Stage-breakdown support for spabench -stages: scrape a running spad's
// /metrics snapshot and reduce its per-stage latency histograms to the
// table the report prints, plus the /metrics format cross-check the CI
// smoke runs (-check-metrics).

// StageOrder is the pipeline-order key set of wire.Metrics.Stages.
// repl_apply is the follower-side stage (applying one shipped wave through
// the core); it has observations only on a node running with -follow.
var StageOrder = []string{"decode", "queue", "gather", "prepare", "commit", "wal_sync", "compaction", "repl_apply"}

// summedStages are the stages a request actually traverses start-to-finish;
// their medians should add up to roughly the end-to-end p50. wal_sync is a
// slice of commit and compaction is background work, so neither is summed.
var summedStages = []string{"decode", "queue", "gather", "prepare", "commit"}

// StageStat is one stage's latency summary.
type StageStat struct {
	Name  string        `json:"name"`
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// FetchMetrics scrapes a spad's JSON /metrics snapshot.
func FetchMetrics(baseURL string) (wire.Metrics, error) {
	var m wire.Metrics
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("scalebench: /metrics: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("scalebench: decoding /metrics: %w", err)
	}
	return m, nil
}

// StageBreakdown reduces the snapshot's stage histograms to per-stage
// summaries in pipeline order, skipping stages with no observations.
func StageBreakdown(m wire.Metrics) []StageStat {
	out := make([]StageStat, 0, len(StageOrder))
	for _, name := range StageOrder {
		h, ok := m.Stages[name]
		if !ok || h.Count == 0 {
			continue
		}
		st := StageStat{
			Name:  name,
			Count: h.Count,
			Mean:  time.Duration(h.SumNanos / h.Count),
			P50:   obs.QuantileFromCounts(h.Counts, 0.50),
			P95:   obs.QuantileFromCounts(h.Counts, 0.95),
			P99:   obs.QuantileFromCounts(h.Counts, 0.99),
		}
		out = append(out, st)
	}
	return out
}

// SumStageP50 adds the medians of the stages a request traverses
// end-to-end (decode, queue, gather, prepare, commit) — the number to hold
// against the loadgen's e2e p50, within the histogram's bucket error.
func SumStageP50(stats []StageStat) time.Duration {
	var sum time.Duration
	for _, st := range stats {
		for _, name := range summedStages {
			if st.Name == name {
				sum += st.P50
				break
			}
		}
	}
	return sum
}

// FormatStages renders the breakdown as the aligned table spabench prints.
func FormatStages(stats []StageStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-11s %10s %12s %12s %12s %12s\n", "stage", "count", "mean", "p50", "p95", "p99")
	for _, st := range stats {
		fmt.Fprintf(&b, "  %-11s %10d %12s %12s %12s %12s\n",
			st.Name, st.Count,
			st.Mean.Round(time.Microsecond),
			st.P50.Round(time.Microsecond),
			st.P95.Round(time.Microsecond),
			st.P99.Round(time.Microsecond))
	}
	return b.String()
}

// CheckMetricsFormats scrapes a running spad's /metrics in both formats
// and cross-checks them: the JSON must decode, the Prometheus text
// exposition must parse under the strict parser (HELP/TYPE, cumulative
// le-sorted buckets, +Inf, _count consistency), at least one _bucket
// series must be present, and scrape-stable counters must agree between
// the two. The CI smoke fails the build on any violation.
func CheckMetricsFormats(baseURL string) error {
	m, err := FetchMetrics(baseURL)
	if err != nil {
		return err
	}
	req, err := http.NewRequest("GET", baseURL+"/metrics", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scalebench: prometheus /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		return fmt.Errorf("scalebench: prometheus /metrics content type %q, want %q", ct, obs.PromContentType)
	}
	fams, err := obs.ParseProm(strings.NewReader(string(raw)))
	if err != nil {
		return fmt.Errorf("scalebench: unparseable exposition: %w", err)
	}
	if !strings.Contains(string(raw), "_bucket{") {
		return fmt.Errorf("scalebench: exposition has no _bucket series")
	}
	series := func(name string) (float64, error) {
		for _, f := range fams {
			if v, ok := f.Samples[name]; ok {
				return v, nil
			}
		}
		return 0, fmt.Errorf("scalebench: series %s missing from exposition", name)
	}
	stable := map[string]float64{
		"spad_users":                   float64(m.Users),
		"spad_ingest_commits_total":    float64(m.IngestCommits),
		"spad_ingest_events_total":     float64(m.IngestEvents),
		"spad_ingest_requests_total":   float64(m.IngestRequests),
		"spad_snapshot_epoch":          float64(m.SnapshotEpoch),
		"spad_read_cache_hits_total":   float64(m.ReadCacheHits),
		"spad_knn_rebuilds_total":      float64(m.KNNRebuilds),
		"spad_read_cache_misses_total": float64(m.ReadCacheMisses),
		"spad_repl_applied_lsn":        float64(m.ReplAppliedLSN),
		// The cluster series render on every daemon (zeros outside cluster
		// mode), so their presence is part of the stable contract.
		"spad_cluster_epoch":         float64(m.ClusterEpoch),
		"spad_cluster_slots_owned":   float64(m.ClusterSlotsOwned),
		"spad_cluster_bounces_total": float64(m.ClusterBounces),
		"spad_slot_moves_total":      float64(m.SlotMoves),
	}
	if m.SnapshotEpoch < 1 {
		return fmt.Errorf("scalebench: snapshot_epoch %d, want >= 1 on a live core", m.SnapshotEpoch)
	}
	for name, want := range stable {
		got, err := series(name)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("scalebench: %s = %v in exposition but %v in JSON", name, got, want)
		}
	}
	return nil
}
