// Package scalebench is the shared workload harness behind
// BenchmarkShardedIngest and spabench's [S1] section, so both measure the
// exact same ingest shape: fixed-size multi-user event bursts pushed by a
// small pool of workers. Keeping it in one place means a change to the
// workload (burst sizing, event mix) cannot silently diverge between the
// benchmark and the CLI table.
package scalebench

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lifelog"
)

// Workload shape shared by the benchmark and spabench. 8 workers ingesting
// 64-user bursts of 4 events each over a 512-user population.
const (
	Workers   = 8
	Users     = 512
	BurstSize = 64 // users per ingest call
	PerUser   = 4  // events per user per burst
)

// EventsPerBurst is the number of events one ingest call carries.
const EventsPerBurst = BurstSize * PerUser

// MakeBursts builds the canonical burst set: Users/BurstSize bursts, each
// covering a disjoint user range with per-user ascending timestamps.
func MakeBursts() [][]lifelog.Event {
	base := clock.Epoch.Add(-24 * time.Hour)
	bursts := make([][]lifelog.Event, Users/BurstSize)
	for g := range bursts {
		for u := 0; u < BurstSize; u++ {
			id := uint64(g*BurstSize + u + 1)
			for i := 0; i < PerUser; i++ {
				bursts[g] = append(bursts[g], lifelog.Event{
					UserID: id,
					Time:   base.Add(time.Duration(i) * time.Second),
					Type:   lifelog.EventClick,
					Action: uint32((int(id)*PerUser + i) % lifelog.ActionUniverse),
				})
			}
		}
	}
	return bursts
}

// RunWorkers drives n ops through the worker pool: op i is fn(i), ops are
// handed out via a shared counter. The first error stops nothing but is
// returned once every worker has drained.
func RunWorkers(n int64, fn func(i int64) error) error {
	var (
		mu       sync.Mutex
		firstErr error
		next     int64
	)
	var wg sync.WaitGroup
	for w := 0; w < Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
