// Package scalebench is the shared workload harness behind
// BenchmarkShardedIngest and spabench's scale sections, so every consumer
// measures the exact same ingest shape: fixed-size multi-user event bursts
// over disjoint user ranges. [S1] pushes the bursts through the in-process
// facade with a worker pool (RunWorkers); [S2] pushes them through a live
// spad daemon over the wire with concurrent clients (RunLoadgen,
// loadgen.go). Keeping the workload in one place means a change to it
// (burst sizing, event mix) cannot silently diverge between the benchmark,
// the CLI table, and the load generator.
package scalebench

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/lifelog"
)

// Workload shape shared by the benchmark and spabench. 8 workers ingesting
// 64-user bursts of 4 events each over a 512-user population.
const (
	Workers   = 8
	Users     = 512
	BurstSize = 64 // users per ingest call
	PerUser   = 4  // events per user per burst
)

// EventsPerBurst is the number of events one ingest call carries.
const EventsPerBurst = BurstSize * PerUser

// MakeBursts builds the canonical burst set: Users/BurstSize bursts, each
// covering a disjoint user range with per-user ascending timestamps.
func MakeBursts() [][]lifelog.Event {
	return MakeBurstsFor(0)
}

// MakeBurstsFor builds the canonical burst set over a shifted user range
// [offset+1, offset+Users]. The S2 loadgen gives every concurrent client
// its own offset, so clients never interleave events of a shared user and
// per-user order is preserved no matter how their requests coalesce.
func MakeBurstsFor(offset uint64) [][]lifelog.Event {
	return MakeBurstsSized(offset, BurstSize)
}

// MakeBurstsSized is MakeBurstsFor with a custom burst width: Users is
// split into Users/usersPerBurst bursts of usersPerBurst users × PerUser
// events. The serving benchmark uses narrow bursts — a network request
// carries one device's recent events, not a 64-user mega-batch; the wide
// [S1] shape stays the in-process default.
func MakeBurstsSized(offset uint64, usersPerBurst int) [][]lifelog.Event {
	return MakeBurstsSpan(offset, Users, usersPerBurst)
}

// MakeBurstsSpan is MakeBurstsSized over a custom population width: span
// users from offset+1, split into span/usersPerBurst bursts. The streamed
// loadgen splits one client's Users-wide range into per-lane sub-ranges,
// so a transport comparison holds the total population fixed while the
// lane count varies.
func MakeBurstsSpan(offset uint64, span, usersPerBurst int) [][]lifelog.Event {
	if span <= 0 || span > Users {
		span = Users
	}
	if usersPerBurst <= 0 || usersPerBurst > span {
		usersPerBurst = min(BurstSize, span)
	}
	base := clock.Epoch.Add(-24 * time.Hour)
	bursts := make([][]lifelog.Event, span/usersPerBurst)
	for g := range bursts {
		for u := 0; u < usersPerBurst; u++ {
			id := offset + uint64(g*usersPerBurst+u+1)
			for i := 0; i < PerUser; i++ {
				bursts[g] = append(bursts[g], lifelog.Event{
					UserID: id,
					Time:   base.Add(time.Duration(i) * time.Second),
					Type:   lifelog.EventClick,
					Action: uint32((int(id)*PerUser + i) % lifelog.ActionUniverse),
				})
			}
		}
	}
	return bursts
}

// RunWorkers drives n ops through the worker pool: op i is fn(i), ops are
// handed out via a shared counter. The first error stops nothing but is
// returned once every worker has drained.
func RunWorkers(n int64, fn func(i int64) error) error {
	var (
		mu       sync.Mutex
		firstErr error
		next     int64
	)
	var wg sync.WaitGroup
	for w := 0; w < Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
