package scalebench

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/rng"
	"repro/internal/spaclient"
	"repro/internal/synth"
)

// The [S6] harness: scenario replay. Where [S2]-[S5] drive uniform,
// ingest-only bursts to isolate transport effects, this loadgen replays
// the traffic shape a deployed SPA system would actually see, per the
// paper's warehousing framing: a zipf-skewed user population (a handful
// of heavy users dominate the stream), diurnal traffic waves (session
// volume swells toward a peak hour and ebbs overnight — compressed here
// into per-session burst sizing rather than wall-clock pacing), and
// mixed-endpoint sessions in which a device upload (ingest) is followed
// by recommendation pulls, a Gradual EIT question/answer exchange, and
// campaign reinforcement — so the write path and the read path contend
// for the same shards, which no single-endpoint section exercises.
//
// Every session's content derives from the seed; only timestamps are
// assigned at execution time (per-user monotone cursors under a per-user
// lock, which also serializes a hot user's sessions the way one device
// uploading sequentially would).

// ScenarioConfig parameterizes one scenario replay.
type ScenarioConfig struct {
	// BaseURL locates the daemon.
	BaseURL string
	// Endpoints lists every node of a multi-node target (replica set or
	// cluster); empty replays against BaseURL alone. Session workers are
	// spread round-robin across the endpoints, so reads and writes arrive
	// at every node even before routing kicks in.
	Endpoints []string
	// Cluster enables topology-aware routing in the replay clients: each
	// user-keyed request goes to the slot owner per /v1/topology, with the
	// single-hop 421 bounce retry. Without it a multi-endpoint replay
	// relies on the server-side bounce alone and counts 421s as errors.
	Cluster bool
	// Seed derives the population, skew, and every session's content.
	Seed uint64
	// Users is the synthetic population size (default Users).
	Users int
	// Clients is the number of concurrent session workers (default Workers).
	Clients int
	// Sessions is the total session count to replay (default 96).
	Sessions int
	// ZipfS is the popularity exponent over the user ranks (default 1.07,
	// the skew pinned by the rng/zipf property test).
	ZipfS float64
	// Register creates the population first (conflicts on rerun are fine).
	Register bool
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
}

// ScenarioResult is one replay's measurement, split into the write side
// (ingest, EIT answers, rewards) and the read side (recommendations, EIT
// questions) so both serving paths report throughput and tail latency.
type ScenarioResult struct {
	Sessions int `json:"sessions"`
	Events   int `json:"events"`
	WriteOps int `json:"write_ops"`
	ReadOps  int `json:"read_ops"`
	// ColdReads counts recommendation pulls answered 409 before the CF
	// model had interactions — expected early in a replay, not errors.
	ColdReads int           `json:"cold_reads"`
	Errors    int           `json:"errors"`
	Duration  time.Duration `json:"duration_ns"`

	WriteEventsPerSec float64       `json:"write_events_per_sec"`
	ReadOpsPerSec     float64       `json:"read_ops_per_sec"`
	WriteP50          time.Duration `json:"write_p50_ns"`
	WriteP95          time.Duration `json:"write_p95_ns"`
	WriteP99          time.Duration `json:"write_p99_ns"`
	ReadP50           time.Duration `json:"read_p50_ns"`
	ReadP95           time.Duration `json:"read_p95_ns"`
	ReadP99           time.Duration `json:"read_p99_ns"`

	// Top1PctShare is the session share of the most-replayed 1% of users
	// (at least one user) — the realized skew, for reporting.
	Top1PctShare float64 `json:"top1pct_share"`
}

// sessionPlan is one session's seed-derived content. Timestamps are
// deliberately absent: they come from the per-user cursor at run time.
type sessionPlan struct {
	user      uint64
	types     []lifelog.EventType
	actions   []uint32
	values    []float32
	recommend bool
	question  bool
	answerOpt int
	reward    bool
	attr      string
}

// RunScenario replays the scenario against a live daemon.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	if cfg.BaseURL == "" && len(cfg.Endpoints) > 0 {
		cfg.BaseURL = cfg.Endpoints[0]
	}
	if cfg.BaseURL == "" {
		return ScenarioResult{}, errors.New("scalebench: scenario needs a base URL")
	}
	if cfg.Users <= 0 {
		cfg.Users = Users
	}
	if cfg.Clients <= 0 {
		cfg.Clients = Workers
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 96
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.07
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	pop, err := synth.Generate(synth.DefaultConfig(cfg.Users, cfg.Seed))
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("scalebench: scenario population: %w", err)
	}

	plans, topShare := buildSessionPlans(cfg, pop)

	bases := cfg.Endpoints
	if len(bases) == 0 {
		bases = []string{cfg.BaseURL}
	}
	clients := make([]*spaclient.Client, cfg.Clients)
	for i := range clients {
		clients[i] = spaclient.New(bases[i%len(bases)],
			spaclient.Options{Timeout: cfg.Timeout, Cluster: cfg.Cluster})
	}
	if cfg.Register {
		if err := registerPopulation(clients, cfg.Users); err != nil {
			return ScenarioResult{}, err
		}
	}

	// Per-user serialization + monotone time cursors: a user's sessions
	// run one at a time with strictly increasing event timestamps, so the
	// server-side coalescer can merge any mix of in-flight requests
	// without ever seeing an out-of-order per-user stream.
	userMu := make([]sync.Mutex, cfg.Users+1)
	cursor := make([]time.Time, cfg.Users+1)
	for u := 1; u <= cfg.Users; u++ {
		cursor[u] = clock.Epoch.Add(time.Duration(u) * time.Second)
	}

	type workerStats struct {
		events, writeOps, readOps, coldReads, errors int
		writeLat, readLat                            []time.Duration
	}
	stats := make([]workerStats, cfg.Clients)
	var next int64
	var mu sync.Mutex
	takeSession := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= len(plans) {
			return -1
		}
		i := int(next)
		next++
		return i
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w]
			st := &stats[w]
			for {
				i := takeSession()
				if i < 0 {
					return
				}
				p := &plans[i]
				u := p.user
				userMu[u].Lock()

				// Write side: the device upload.
				evs := make([]lifelog.Event, len(p.types))
				at := cursor[u]
				for k := range p.types {
					at = at.Add(13 * time.Second)
					evs[k] = lifelog.Event{UserID: u, Time: at, Type: p.types[k], Action: p.actions[k], Value: p.values[k]}
				}
				cursor[u] = at.Add(7 * time.Minute)
				t1 := time.Now()
				resp, err := c.Ingest(evs)
				st.writeLat = append(st.writeLat, time.Since(t1))
				st.writeOps++
				if err != nil {
					st.errors++
				} else {
					st.events += resp.Processed
				}

				// Read side: recommendation pull.
				if p.recommend {
					t1 = time.Now()
					_, err := c.Recommend(u, 5)
					st.readLat = append(st.readLat, time.Since(t1))
					st.readOps++
					if isStatus(err, http.StatusConflict) {
						st.coldReads++ // CF model not warmed yet
					} else if err != nil {
						st.errors++
					}
				}

				// EIT exchange: question (read), answer (write).
				if p.question {
					t1 = time.Now()
					q, err := c.NextQuestion(u)
					st.readLat = append(st.readLat, time.Since(t1))
					st.readOps++
					if err != nil {
						st.errors++
					} else if len(q.Options) > 0 {
						t1 = time.Now()
						err = c.SubmitAnswer(u, q.ID, p.answerOpt%len(q.Options))
						st.writeLat = append(st.writeLat, time.Since(t1))
						st.writeOps++
						if err != nil {
							st.errors++
						}
					}
				}

				// Campaign reinforcement (write).
				if p.reward {
					t1 = time.Now()
					err := c.Reward(u, []string{p.attr})
					st.writeLat = append(st.writeLat, time.Since(t1))
					st.writeOps++
					if err != nil {
						st.errors++
					}
				}
				userMu[u].Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := ScenarioResult{Sessions: len(plans), Duration: elapsed, Top1PctShare: topShare}
	var writes, reads []time.Duration
	for _, st := range stats {
		res.Events += st.events
		res.WriteOps += st.writeOps
		res.ReadOps += st.readOps
		res.ColdReads += st.coldReads
		res.Errors += st.errors
		writes = append(writes, st.writeLat...)
		reads = append(reads, st.readLat...)
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i] < writes[j] })
	sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
	res.WriteP50, res.WriteP95, res.WriteP99 = percentile(writes, 0.50), percentile(writes, 0.95), percentile(writes, 0.99)
	res.ReadP50, res.ReadP95, res.ReadP99 = percentile(reads, 0.50), percentile(reads, 0.95), percentile(reads, 0.99)
	if secs := elapsed.Seconds(); secs > 0 {
		res.WriteEventsPerSec = float64(res.Events) / secs
		res.ReadOpsPerSec = float64(res.ReadOps) / secs
	}
	return res, nil
}

// buildSessionPlans derives every session from the seed: who (zipf over a
// shuffled rank→user map), how much (the user's activity scaled by the
// diurnal wave the session falls into), and what (interest-bucketed
// actions under an in-bucket popularity law, mirroring the synthetic
// WebLog shape; plus the read/answer/reward mix). Also returns the
// realized session share of the top 1% of users.
func buildSessionPlans(cfg ScenarioConfig, pop *synth.Population) ([]sessionPlan, float64) {
	r := rng.New(cfg.Seed ^ 0x5ca1ab1e)
	zipf := rng.NewZipf(cfg.Users, cfg.ZipfS)
	actionZipf := rng.NewZipf(lifelog.ActionUniverse/lifelog.NumActionBuckets+1, 1.05)
	rankToUser := r.Perm(cfg.Users)

	plans := make([]sessionPlan, cfg.Sessions)
	perUser := make(map[uint64]int, cfg.Users)
	for i := range plans {
		user := uint64(rankToUser[zipf.Draw(r)] + 1)
		u := &pop.Users[user-1]
		perUser[user]++

		// Diurnal wave: sessions sweep one virtual day, peaking at 14:00.
		// The wave scales burst volume — the compressed stand-in for
		// arrival-rate swell, keeping the bench wall-clock-bounded.
		hour := 24 * float64(i) / float64(cfg.Sessions)
		wave := 1 + 0.75*math.Sin(2*math.Pi*(hour-8)/24)
		n := int(math.Round(u.Activity*wave)) + 1
		if n > 24 {
			n = 24
		}

		p := sessionPlan{
			user:      user,
			types:     make([]lifelog.EventType, n),
			actions:   make([]uint32, n),
			values:    make([]float32, n),
			recommend: r.Bool(0.5),
			question:  r.Bool(0.45),
			answerOpt: r.Intn(8),
			reward:    r.Bool(0.25),
			attr:      emotion.Attribute(r.Intn(emotion.NumAttributes)).String(),
		}
		for k := 0; k < n; k++ {
			bucket := r.Categorical(u.InterestBuckets)
			action := uint32(bucket*lifelog.ActionUniverse/lifelog.NumActionBuckets + actionZipf.Draw(r))
			if action >= lifelog.ActionUniverse {
				action = lifelog.ActionUniverse - 1
			}
			p.actions[k] = action
			switch {
			case r.Bool(0.25):
				p.types[k] = lifelog.EventPageView
				p.values[k] = float32(10 + r.Intn(300))
			case r.Bool(0.08):
				p.types[k] = lifelog.EventSearch
			default:
				p.types[k] = lifelog.EventClick
			}
		}
		plans[i] = p
	}

	// Realized top-1% share: how much of the replay the heaviest users own.
	counts := make([]int, 0, len(perUser))
	for _, c := range perUser {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := cfg.Users / 100
	if top < 1 {
		top = 1
	}
	sum := 0
	for i := 0; i < top && i < len(counts); i++ {
		sum += counts[i]
	}
	return plans, float64(sum) / float64(cfg.Sessions)
}

// registerPopulation creates users 1..n, split across the clients.
func registerPopulation(clients []*spaclient.Client, n int) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(clients))
	per := (n + len(clients) - 1) / len(clients)
	for k, c := range clients {
		wg.Add(1)
		go func(k int, c *spaclient.Client) {
			defer wg.Done()
			for u := k*per + 1; u <= (k+1)*per && u <= n; u++ {
				err := c.Register(uint64(u), nil)
				if err != nil && !isStatus(err, http.StatusConflict) {
					errCh <- fmt.Errorf("registering user %d: %w", u, err)
					return
				}
			}
		}(k, c)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// isStatus reports whether err is an API error with the given status.
func isStatus(err error, status int) bool {
	var apiErr *spaclient.APIError
	return errors.As(err, &apiErr) && apiErr.Status == status
}

// synthPop builds the scenario population for a config (test helper
// shared with the smoke tests).
func synthPop(cfg ScenarioConfig) (*synth.Population, error) {
	return synth.Generate(synth.DefaultConfig(cfg.Users, cfg.Seed))
}
