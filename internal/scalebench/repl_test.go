package scalebench

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/spaclient"
)

// TestS8Smoke is the harness check for the [S8] replicated-read section:
// a durable leader plus one streaming follower, with the mixed workload's
// clients routing reads across both nodes. It asserts the plumbing — the
// follower actually takes a share of the reads, the lag sampler observes a
// real distribution, and the run finishes clean — not the throughput
// scaling, which needs real cores and belongs to spabench.
func TestS8Smoke(t *testing.T) {
	clk := clock.NewSimulated(clock.Epoch)
	spa, err := core.New(core.Options{DataDir: t.TempDir(), Shards: 4, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{Pipeline: true})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
		spa.Close()
	}()

	// Follower boots before traffic so the CF interaction stream reaches it
	// live (interaction counts travel only in wave annotations).
	fspa, err := core.New(core.Options{DataDir: t.TempDir(), Shards: 4, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := server.New(fspa, server.Options{FollowerOf: ts.URL})
	// Count the reads the routing layer actually lands on the follower —
	// its status polls and the lag sampler don't count.
	var followerReads atomic.Int64
	fts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet &&
			r.URL.Path != "/v1/replication/status" && r.URL.Path != "/metrics" {
			followerReads.Add(1)
		}
		fsrv.ServeHTTP(w, r)
	}))
	defer func() {
		fts.Close()
		fsrv.Close()
		fspa.Close()
	}()

	const users = 64
	c := spaclient.New(ts.URL, spaclient.Options{})
	if err := registerPopulation([]*spaclient.Client{c}, users); err != nil {
		t.Fatal(err)
	}

	// Wait for the follower to stream through the registrations before
	// measuring, then train the propensity model on both cores (it ships
	// out-of-band, not through the log).
	lst, err := c.ReplicationStatus()
	if err != nil {
		t.Fatal(err)
	}
	fc := spaclient.New(fts.URL, spaclient.Options{})
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := fc.ReplicationStatus()
		if err == nil && st.State == "streaming" && st.AppliedLSN >= lst.AppliedLSN {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up to lsn %d (last %+v, err %v)", lst.AppliedLSN, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, node := range []*core.SPA{spa, fspa} {
		var feats [][]float64
		var labels []bool
		for id := uint64(1); id <= users; id++ {
			fv, err := node.FeatureVector(id)
			if err != nil {
				t.Fatal(err)
			}
			feats = append(feats, fv)
			labels = append(labels, id%2 == 0)
		}
		if err := node.TrainPropensity(feats, labels); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	staleCh := make(chan Staleness, 1)
	go func() {
		staleCh <- SampleFollowerLag(fts.URL, 2*time.Millisecond, stop)
	}()
	res, err := RunMixed(MixedConfig{
		BaseURL:           ts.URL,
		Seed:              13,
		Users:             users,
		Clients:           4,
		Ops:               160,
		ReadFrom:          []string{fts.URL},
		MaxStalenessWaves: 1 << 20, // plumbing under test, not the bound
	})
	close(stop)
	stale := <-staleCh
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("mixed run errors: %+v", res)
	}
	if res.Ops != 160 || res.ReadOps == 0 || res.WriteOps == 0 {
		t.Fatalf("degenerate mix: %+v", res)
	}
	// Round-robin over a two-node pool: the follower must have taken a real
	// share of the reads, not a stray one or two.
	if got := followerReads.Load(); got < int64(res.ReadOps/4) {
		t.Fatalf("follower served %d of %d reads, want at least a quarter", got, res.ReadOps)
	}
	if stale.Samples == 0 {
		t.Fatal("lag sampler observed nothing during the run")
	}
	if stale.Max < stale.P95 || stale.P95 < stale.P50 {
		t.Fatalf("staleness distribution out of order: %+v", stale)
	}

	// The follower kept pace: after the run it converges again and its
	// served reads came from replicated state, not forwarding (it answers
	// even with the leader gone — the e2e smoke proves that half; here the
	// routed reads above already never touched the leader's handler).
	lst, err = c.ReplicationStatus()
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		st, err := fc.ReplicationStatus()
		if err == nil && st.AppliedLSN >= lst.AppliedLSN {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never re-converged to lsn %d", lst.AppliedLSN)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
