package scalebench

import (
	"net/http/httptest"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/spaclient"
)

func TestS7Smoke(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{Pipeline: true})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
		spa.Close()
	}()

	const users = 64
	c := spaclient.New(ts.URL, spaclient.Options{})
	if err := registerPopulation([]*spaclient.Client{c}, users); err != nil {
		t.Fatal(err)
	}
	// Train the propensity model in-process so the select-top / propensity
	// reads in the mix are warm, as the spabench [S7] section does.
	var feats [][]float64
	var labels []bool
	for id := uint64(1); id <= users; id++ {
		fv, err := spa.FeatureVector(id)
		if err != nil {
			t.Fatal(err)
		}
		feats = append(feats, fv)
		labels = append(labels, id%2 == 0)
	}
	if err := spa.TrainPropensity(feats, labels); err != nil {
		t.Fatal(err)
	}

	res, err := RunMixed(MixedConfig{
		BaseURL: ts.URL,
		Seed:    13,
		Users:   users,
		Clients: 4,
		Ops:     120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("mixed run errors: %+v", res)
	}
	if res.Ops != 120 {
		t.Fatalf("ops %d, want 120", res.Ops)
	}
	if res.ReadOps == 0 || res.WriteOps == 0 || res.Events == 0 {
		t.Fatalf("one side of the mix did not run: %+v", res)
	}
	// 90/10 with seed 13 over 120 ops: reads must dominate.
	if res.ReadOps <= res.WriteOps*4 {
		t.Fatalf("mix not read-heavy: %d reads vs %d writes", res.ReadOps, res.WriteOps)
	}
	if res.ReadP50 <= 0 || res.ReadP99 < res.ReadP50 || res.WriteP50 <= 0 || res.WriteP99 < res.WriteP50 {
		t.Fatalf("degenerate latency measurements: %+v", res)
	}
	if res.ReadOpsPerSec <= 0 || res.WriteEventsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}

	// The run must have exercised the snapshot read path: writes publish
	// epochs, recommendation pulls hit the per-shard cache counters.
	rs := spa.ReadStats()
	if rs.SnapshotEpoch < 2 {
		t.Fatalf("snapshot epoch %d, want >= 2 after mixed writes", rs.SnapshotEpoch)
	}
	if rs.ReadCacheHits+rs.ReadCacheMisses == 0 {
		t.Fatalf("recommend cache never touched: %+v", rs)
	}
}
