package scalebench

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/lifelog"
	"repro/internal/spaclient"
	"repro/internal/wire"
)

// The [S2] harness: drive a live spad over its real wire protocol with K
// concurrent clients and measure what the serving layer delivers —
// throughput, per-request latency percentiles, and how well the
// cross-request coalescer is batching. The workload is the same burst shape
// as [S1] (MakeBursts), shifted so each client owns a disjoint user range:
// cross-client coalescing then can never violate per-user event order, the
// same contract production traffic has when each device uploads its own
// user's LifeLog.

// LoadgenConfig parameterizes one loadgen run.
type LoadgenConfig struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// Clients is the number of concurrent clients (default Workers).
	Clients int
	// Requests is the total ingest-request budget, split evenly across
	// clients (default 48, matching the [S1] burst count).
	Requests int
	// Register creates each client's user range first. Conflicts (already
	// registered, e.g. on a second run against the same daemon) are fine.
	Register bool
	// UsersPerRequest is the burst width of one ingest request (default 8
	// users × PerUser events — a device-upload-sized payload; [S1]'s wide
	// 64-user bursts are an in-process shape, not a wire shape).
	UsersPerRequest int
	// Timeout bounds each request (default 30 s — a full queue with sync
	// writes can make tail latencies grow well past interactive defaults).
	Timeout time.Duration
	// JSONOnly forces the clients onto the JSON ingest path instead of the
	// binary framing — the [S3] measurement baseline.
	JSONOnly bool
	// Stream drives each client through one persistent binary stream
	// (StreamIngester) instead of per-request HTTP: StreamWindow worker
	// lanes share the client's connection, so up to StreamWindow frames
	// pipeline in flight per stream — the capability per-request HTTP/1.1
	// lacks, and what the [S5] section measures.
	Stream bool
	// StreamWindow is the in-flight frame depth per stream (default 4,
	// bounded by the server's credit grant). Ignored without Stream.
	StreamWindow int
}

// LoadgenResult is one run's measurement.
type LoadgenResult struct {
	Clients  int           `json:"clients"`
	Requests int           `json:"requests"`
	Events   int           `json:"events"`
	Errors   int           `json:"errors"`
	Duration time.Duration `json:"duration_ns"`
	// EventsPerSec is end-to-end ingest throughput over the wire.
	EventsPerSec float64 `json:"events_per_sec"`
	// P50/P95/P99 are per-request round-trip latencies.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// MeanCoalesced averages the server-reported commit group size over
	// requests; 1.0 means no cross-request batching happened.
	MeanCoalesced float64 `json:"mean_coalesced"`
	MaxCoalesced  int     `json:"max_coalesced"`
}

// RunLoadgen registers (optionally) and then hammers the daemon, returning
// aggregate measurements. An error means the run itself could not execute;
// per-request failures are counted in Errors.
func RunLoadgen(cfg LoadgenConfig) (LoadgenResult, error) {
	if cfg.BaseURL == "" {
		return LoadgenResult{}, errors.New("scalebench: loadgen needs a base URL")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = Workers
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 48
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.UsersPerRequest <= 0 {
		cfg.UsersPerRequest = 8
	}
	// A lane is one synchronous request loop over its own disjoint user
	// range. Per-request mode runs one lane per client (stop-and-wait, the
	// HTTP/1.1 reality); stream mode runs StreamWindow lanes per client,
	// all multiplexed onto that client's one stream connection, so the
	// stream carries up to StreamWindow frames in flight.
	window := 1
	if cfg.Stream {
		window = cfg.StreamWindow
		if window <= 0 {
			window = 4
		}
	}
	lanes := cfg.Clients * window
	perLane := (cfg.Requests + lanes - 1) / lanes
	// Each lane owns span users: a window of W lanes splits its client's
	// Users-wide range W ways, so the total population (Clients × Users)
	// is identical whichever transport runs — the comparison varies only
	// the wire, never the data shape. That invariant only holds when the
	// window divides Users exactly and the span still fits a whole
	// request's burst, so reject configs that would silently skew the
	// population instead of patching the span.
	span := Users / window
	if span*window != Users {
		return LoadgenResult{}, fmt.Errorf(
			"scalebench: stream window %d must divide the %d-user client range", window, Users)
	}
	if span < cfg.UsersPerRequest {
		return LoadgenResult{}, fmt.Errorf(
			"scalebench: window %d leaves %d users per lane, fewer than the %d each request needs",
			window, span, cfg.UsersPerRequest)
	}

	clients := make([]*spaclient.Client, lanes)
	for k := range clients {
		clients[k] = spaclient.New(cfg.BaseURL, spaclient.Options{Timeout: cfg.Timeout, DisableBinary: cfg.JSONOnly})
	}
	if cfg.Register {
		if err := registerRanges(clients, span); err != nil {
			return LoadgenResult{}, err
		}
	}
	ingest := make([]func([]lifelog.Event) (wire.IngestResponse, error), lanes)
	if cfg.Stream {
		streams := make([]*spaclient.StreamIngester, cfg.Clients)
		for s := range streams {
			streams[s] = clients[s*window].Stream(spaclient.StreamOptions{Timeout: cfg.Timeout})
			defer streams[s].Close()
		}
		for k := range ingest {
			ingest[k] = streams[k/window].Ingest
		}
	} else {
		for k := range ingest {
			ingest[k] = clients[k].Ingest
		}
	}

	type clientStats struct {
		latencies []time.Duration
		events    int
		errors    int
		coalesced int
		maxCo     int
	}
	stats := make([]clientStats, lanes)
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < lanes; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			st := &stats[k]
			burstSet := MakeBurstsSpan(uint64(k)*uint64(span), span, cfg.UsersPerRequest)
			for r := 0; r < perLane; r++ {
				burst := burstSet[r%len(burstSet)]
				t1 := time.Now()
				resp, err := ingest[k](burst)
				st.latencies = append(st.latencies, time.Since(t1))
				if err != nil {
					st.errors++
					continue
				}
				st.events += resp.Processed
				st.coalesced += resp.CoalescedWith
				if resp.CoalescedWith > st.maxCo {
					st.maxCo = resp.CoalescedWith
				}
			}
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadgenResult{
		Clients:  cfg.Clients,
		Requests: perLane * lanes,
		Duration: elapsed,
	}
	var all []time.Duration
	okRequests := 0
	coalescedSum := 0
	for _, st := range stats {
		all = append(all, st.latencies...)
		res.Events += st.events
		res.Errors += st.errors
		okRequests += len(st.latencies) - st.errors
		coalescedSum += st.coalesced
		if st.maxCo > res.MaxCoalesced {
			res.MaxCoalesced = st.maxCo
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50 = percentile(all, 0.50)
	res.P95 = percentile(all, 0.95)
	res.P99 = percentile(all, 0.99)
	if secs := elapsed.Seconds(); secs > 0 {
		res.EventsPerSec = float64(res.Events) / secs
	}
	if okRequests > 0 {
		res.MeanCoalesced = float64(coalescedSum) / float64(okRequests)
	}
	return res, nil
}

// registerRanges creates every lane's span-wide user range, in parallel
// per lane; "already registered" answers are expected on reruns.
func registerRanges(clients []*spaclient.Client, span int) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(clients))
	for k, c := range clients {
		wg.Add(1)
		go func(k int, c *spaclient.Client) {
			defer wg.Done()
			offset := uint64(k) * uint64(span)
			for u := 1; u <= span; u++ {
				err := c.Register(offset+uint64(u), nil)
				var apiErr *spaclient.APIError
				if err != nil && !(errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict) {
					errCh <- fmt.Errorf("registering user %d: %w", offset+uint64(u), err)
					return
				}
			}
		}(k, c)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// percentile reads the p-quantile from an ascending latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
