package scalebench

import (
	"sort"
	"time"

	"repro/internal/spaclient"
)

// Follower-staleness sampling for the [S8] two-node section. The routed
// clients bound staleness per read (spaclient gates on LagWaves); this
// sampler reports what the follower's lag actually WAS across the run, so
// the section can print a staleness distribution next to the throughput
// scaling instead of just asserting the bound held.

// Staleness summarizes the follower lag observed during a run, in waves
// (leader LSN minus follower applied LSN at each sample).
type Staleness struct {
	Samples int    `json:"samples"`
	P50     uint64 `json:"p50_waves"`
	P95     uint64 `json:"p95_waves"`
	Max     uint64 `json:"max_waves"`
}

// SampleFollowerLag polls the follower's /v1/replication/status every
// interval until stop closes, then reduces the observed LagWaves series to
// a distribution. Poll errors are skipped (a sample gap, not a failure):
// the caller's workload is the thing under measurement, not the poller.
func SampleFollowerLag(followerURL string, interval time.Duration, stop <-chan struct{}) Staleness {
	c := spaclient.New(followerURL, spaclient.Options{Timeout: 5 * time.Second})
	var lags []uint64
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return reduceLags(lags)
		case <-tick.C:
			st, err := c.ReplicationStatus()
			if err == nil && st.Role == "follower" {
				lags = append(lags, st.LagWaves)
			}
		}
	}
}

func reduceLags(lags []uint64) Staleness {
	st := Staleness{Samples: len(lags)}
	if len(lags) == 0 {
		return st
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	st.P50 = lags[len(lags)/2]
	st.P95 = lags[(len(lags)*95)/100]
	st.Max = lags[len(lags)-1]
	return st
}
