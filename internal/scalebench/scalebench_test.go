package scalebench

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/spaclient"
)

func TestMakeBurstsShape(t *testing.T) {
	bursts := MakeBursts()
	if len(bursts) != Users/BurstSize {
		t.Fatalf("bursts %d, want %d", len(bursts), Users/BurstSize)
	}
	seen := map[uint64]bool{}
	for _, b := range bursts {
		if len(b) != EventsPerBurst {
			t.Fatalf("burst has %d events, want %d", len(b), EventsPerBurst)
		}
		last := map[uint64]time.Time{}
		for _, e := range b {
			seen[e.UserID] = true
			if prev, ok := last[e.UserID]; ok && e.Time.Before(prev) {
				t.Fatalf("user %d out of order within burst", e.UserID)
			}
			last[e.UserID] = e.Time
		}
	}
	if len(seen) != Users {
		t.Fatalf("bursts cover %d users, want %d", len(seen), Users)
	}
	// Shifted sets must be disjoint per client.
	shifted := MakeBurstsFor(Users)
	for _, b := range shifted {
		for _, e := range b {
			if seen[e.UserID] {
				t.Fatalf("user %d appears in two clients' ranges", e.UserID)
			}
		}
	}
}

func TestRunWorkersDrainsAndReportsFirstError(t *testing.T) {
	boom := errors.New("boom")
	var hits [64]bool
	err := RunWorkers(64, func(i int64) error {
		hits[i] = true
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := RunWorkers(16, func(int64) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestS1Smoke runs a miniature of spabench's [S1] section: the shared burst
// workload through a sharded in-memory core via the worker pool.
func TestS1Smoke(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 8, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer spa.Close()
	for u := 1; u <= Users; u++ {
		if err := spa.Register(uint64(u), nil); err != nil {
			t.Fatal(err)
		}
	}
	bursts := MakeBursts()
	const n = 8
	if err := RunWorkers(n, func(i int64) error {
		processed, skipped, err := spa.IngestEvents(bursts[i%int64(len(bursts))])
		if err == nil && (processed != EventsPerBurst || skipped != 0) {
			return errors.New("burst not fully processed")
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestS2Smoke runs a miniature of spabench's [S2] section end-to-end: a
// live serving stack on loopback, driven by concurrent wire clients.
func TestS2Smoke(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
		spa.Close()
	}()

	const usersPerRequest = 8
	res, err := RunLoadgen(LoadgenConfig{
		BaseURL:         ts.URL,
		Clients:         2,
		Requests:        8,
		Register:        true,
		UsersPerRequest: usersPerRequest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen errors: %+v", res)
	}
	if want := res.Requests * usersPerRequest * PerUser; res.Events != want {
		t.Fatalf("events %d, want %d", res.Events, want)
	}
	if res.EventsPerSec <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("degenerate measurements: %+v", res)
	}
	if res.MeanCoalesced < 1 {
		t.Fatalf("mean coalesced %f < 1", res.MeanCoalesced)
	}
	if spa.Users() != 2*Users {
		t.Fatalf("registered %d users, want %d", spa.Users(), 2*Users)
	}
}

// TestS3Smoke runs a miniature of spabench's [S3] section: the same stack
// driven once with binary-framed clients and once JSON-only — both modes
// must deliver every event, and the binary mode must actually have
// negotiated the framing.
func TestS3Smoke(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
		spa.Close()
	}()

	const usersPerRequest = 8
	var binaryRequests uint64
	for _, jsonOnly := range []bool{false, true} {
		res, err := RunLoadgen(LoadgenConfig{
			BaseURL:         ts.URL,
			Clients:         2,
			Requests:        8,
			Register:        true,
			UsersPerRequest: usersPerRequest,
			JSONOnly:        jsonOnly,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("jsonOnly=%v: loadgen errors: %+v", jsonOnly, res)
		}
		if want := res.Requests * usersPerRequest * PerUser; res.Events != want {
			t.Fatalf("jsonOnly=%v: events %d, want %d", jsonOnly, res.Events, want)
		}
		if jsonOnly {
			continue
		}
		// The binary pass must have spoken binary for every request.
		c := spaclient.New(ts.URL, spaclient.Options{})
		m, err := c.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		binaryRequests = m.IngestBinary
		if binaryRequests != uint64(res.Requests) {
			t.Fatalf("binary pass negotiated %d of %d requests", binaryRequests, res.Requests)
		}
	}
	// The JSON-only pass must not have added any binary requests.
	c := spaclient.New(ts.URL, spaclient.Options{})
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.IngestBinary != binaryRequests {
		t.Fatalf("JSON-only pass spoke binary: %d -> %d", binaryRequests, m.IngestBinary)
	}
}

// TestS4Smoke runs a miniature of spabench's [S4] section: the same live
// stack driven once through the serialized dispatcher and once through the
// pipelined one — both must deliver every event with identical wire
// semantics, and the pipelined run must leave the pipeline quiesced.
func TestS4Smoke(t *testing.T) {
	const usersPerRequest = 8
	for _, pipeline := range []bool{false, true} {
		spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(spa, server.Options{Pipeline: pipeline})
		ts := httptest.NewServer(srv)
		res, err := RunLoadgen(LoadgenConfig{
			BaseURL:         ts.URL,
			Clients:         2,
			Requests:        8,
			Register:        true,
			UsersPerRequest: usersPerRequest,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("pipeline=%v: loadgen errors: %+v", pipeline, res)
		}
		if want := res.Requests * usersPerRequest * PerUser; res.Events != want {
			t.Fatalf("pipeline=%v: events %d, want %d", pipeline, res.Events, want)
		}
		if pipeline {
			c := spaclient.New(ts.URL, spaclient.Options{})
			m, err := c.Metrics()
			if err != nil {
				t.Fatal(err)
			}
			if m.PipelineDepth != 0 {
				t.Fatalf("pipeline depth %d after quiesce", m.PipelineDepth)
			}
			if m.IngestEvents != uint64(res.Events) {
				t.Fatalf("pipelined stack accounted %d of %d events", m.IngestEvents, res.Events)
			}
		}
		ts.Close()
		srv.Close()
		spa.Close()
	}
}

// TestS5Smoke runs a miniature of spabench's [S5] section: the same live
// stack driven once over per-request binary HTTP and once over persistent
// binary streams — both must deliver every event, the stream pass must
// actually have streamed every frame, and the sessions must be gone once
// the loadgen returns.
func TestS5Smoke(t *testing.T) {
	spa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(spa, server.Options{})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
		spa.Close()
	}()

	const usersPerRequest = 8
	for _, stream := range []bool{false, true} {
		res, err := RunLoadgen(LoadgenConfig{
			BaseURL:         ts.URL,
			Clients:         2,
			Requests:        8,
			Register:        true,
			UsersPerRequest: usersPerRequest,
			Stream:          stream,
			StreamWindow:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("stream=%v: loadgen errors: %+v", stream, res)
		}
		if want := res.Requests * usersPerRequest * PerUser; res.Events != want {
			t.Fatalf("stream=%v: events %d, want %d", stream, res.Events, want)
		}
		if !stream {
			continue
		}
		c := spaclient.New(ts.URL, spaclient.Options{})
		m, err := c.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if m.StreamFrames != uint64(res.Requests) {
			t.Fatalf("stream pass framed %d of %d requests", m.StreamFrames, res.Requests)
		}
		if m.StreamConns != 0 {
			t.Fatalf("%d stream sessions survive the loadgen", m.StreamConns)
		}
	}
}
