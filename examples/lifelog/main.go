// Lifelog demonstrates the raw-stream substrate: generating a synthetic
// WebLog for a small population, persisting it to the segmented binary log,
// reading it back, sessionizing it, and extracting the per-user subjective
// feature digests the Attributes Manager consumes — the full LifeLogs
// Pre-processor path, including the self-replicating agent pool.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/agents"
	"repro/internal/lifelog"
	"repro/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "spa-lifelog")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate four weeks of browsing for 500 users and persist it.
	pop, err := synth.Generate(synth.DefaultConfig(500, 42))
	if err != nil {
		log.Fatal(err)
	}
	w, err := lifelog.NewWriter(dir, 256<<10) // small segments to show rolling
	if err != nil {
		log.Fatal(err)
	}
	cfg := synth.WebLogConfig{Weeks: 4, Seed: 1, TransactionBias: 0.35}
	if err := pop.GenerateWebLogs(cfg, w.Append); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d events\n", w.Count())

	// 2. Read back through the elastic pre-processor pool (the paper's
	//    self-replicating LifeLogs Pre-processor Agent).
	var mu sync.Mutex
	perType := map[lifelog.EventType]int{}
	pool, err := agents.NewPool(agents.PoolConfig{Min: 1, Max: 8, QueueCap: 1024, ScaleAt: 8},
		func(m agents.Message) error {
			e := m.Payload.(lifelog.Event)
			mu.Lock()
			perType[e.Type]++
			mu.Unlock()
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	events, err := lifelog.ReadAll(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range events {
		if err := pool.Submit(agents.Message{Topic: "lifelog.raw", Payload: e}); err != nil {
			log.Fatal(err)
		}
	}
	processed, failures := pool.Stop()
	fmt.Printf("pool processed %d events (%d failures), peak workers %d\n\n",
		processed, failures, pool.PeakWorkers())

	fmt.Println("event mix:")
	for t := lifelog.EventType(0); t < 10; t++ {
		if perType[t] > 0 {
			fmt.Printf("  %-14s %6d\n", t, perType[t])
		}
	}

	// 3. Sessionize + extract subjective features.
	x := lifelog.NewExtractor(30*time.Minute, events[len(events)-1].Time.Add(24*time.Hour))
	for _, e := range events {
		if err := x.Feed(e); err != nil {
			log.Fatal(err)
		}
	}
	features := x.Finish()

	// Show the five most active users' digests.
	type uf struct {
		id uint64
		fv lifelog.FeatureVector
	}
	all := make([]uf, 0, len(features))
	for id, fv := range features {
		all = append(all, uf{id, fv})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].fv.Events > all[j].fv.Events })
	fmt.Println("\ntop-5 most active users:")
	fmt.Println("  user   events  sessions  transactions  mean-sess-min")
	for _, u := range all[:5] {
		fmt.Printf("  %4d   %6d  %8d  %12d  %13.1f\n",
			u.id, u.fv.Events, u.fv.Sessions, u.fv.Transactions, u.fv.MeanSessionMinutes)
	}
}
