// Quickstart: the minimal end-to-end SPA loop — register a user, feed
// browsing events, run a few Gradual EIT questions, get an individualized
// message and an advice vector.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
)

func main() {
	clk := clock.NewSimulated(clock.Epoch)
	spa, err := core.New(core.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer spa.Close()

	// 1. Register a user with socio-demographic (objective) attributes:
	//    age, gender, education, employment, income band, city size,
	//    prior courses, tenure months.
	const userID = 1001
	if err := spa.Register(userID, []float64{29, 1, 4, 1, 3, 2, 2, 6}); err != nil {
		log.Fatal(err)
	}

	// 2. Ingest a browsing session (the LifeLogs Pre-processor path).
	t := clock.Epoch.Add(-2 * time.Hour)
	events := []lifelog.Event{
		{UserID: userID, Time: t, Type: lifelog.EventPageView, Action: 12, Value: 40},
		{UserID: userID, Time: t.Add(2 * time.Minute), Type: lifelog.EventClick, Action: 45},
		{UserID: userID, Time: t.Add(5 * time.Minute), Type: lifelog.EventSearch, Action: 3},
		{UserID: userID, Time: t.Add(9 * time.Minute), Type: lifelog.EventInfoRequest, Action: 45},
	}
	processed, _, err := spa.IngestEvents(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events\n", processed)

	// 3. Gradual EIT: one question per touch; here the user consistently
	//    picks the energetic first option.
	for i := 0; i < 8; i++ {
		item, err := spa.NextQuestion(userID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q%d [%s]: %s\n", i+1, item.Branch, item.Prompt)
		fmt.Printf("   -> answer: %s\n", item.Options[0].Text)
		if err := spa.SubmitAnswer(userID, emotion.Answer{ItemID: item.ID, Option: 0}); err != nil {
			log.Fatal(err)
		}
		clk.Advance(24 * time.Hour)
	}

	// 4. Inspect the learned emotional state.
	dom, err := spa.DominantAttributes(userID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dominant attributes:")
	for _, d := range dom {
		fmt.Printf("   %-14s weight %.2f\n", emotion.Attribute(d.AttrID), d.Weight)
	}

	// 5. Messaging Agent: individualized sales argument for a course.
	product := messaging.Product{
		Name: "Course in Digital Marketing",
		SalesAttributes: []emotion.Attribute{
			emotion.Enthusiastic, emotion.Motivated, emotion.Lively, emotion.Stimulated,
		},
	}
	asg, err := spa.AssignMessage(userID, product)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("message (case %s): %s\n", asg.Case, asg.Rendered)

	// 6. Advice vector for the training domain.
	adv, err := spa.Advise(userID, "training")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("advice (activation > 0, inhibition < 0):")
	for a, v := range adv.Excitation {
		if v != 0 {
			fmt.Printf("   %-14s %+.2f\n", emotion.Attribute(a), v)
		}
	}
}
