// Firefighter reproduces the paper's future-work scenario (§7): an Ambient
// Recommender System advising a Paris-brigade commander from firefighters'
// physiological signals, "so he can better assess the operational fitness
// of his colleague in particular situations".
//
// Three firefighters with different stress reactivity run the same scripted
// rescue incident; the program streams their (synthetic) wearable readings
// through the baseline → mapper → advisor pipeline and prints the
// commander's console at one-minute intervals.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/physio"
	"repro/internal/rng"
)

func main() {
	r := rng.New(2006)
	subjects := []physio.Subject{
		physio.NewSubject(1, r),
		physio.NewSubject(2, r),
		physio.NewSubject(3, r),
	}
	// Spread reactivity so the squad differs visibly.
	subjects[0].Reactivity = 0.35
	subjects[1].Reactivity = 0.65
	subjects[2].Reactivity = 0.95

	mapper := physio.NewMapper()
	advisor := physio.NewAdvisor()

	// Baselines from a calm pre-shift period.
	calm := []physio.Phase{{Name: "pre-shift rest", Duration: 6 * time.Minute, Exertion: 0.05, Stress: 0.05}}
	baselines := map[uint64]physio.Baseline{}
	for _, s := range subjects {
		samples, err := physio.Simulate(s, calm, physio.SimulateConfig{Seed: 10 + s.ID})
		if err != nil {
			log.Fatal(err)
		}
		b, err := physio.LearnBaseline(s.ID, samples, 30)
		if err != nil {
			log.Fatal(err)
		}
		baselines[s.ID] = b
		fmt.Printf("firefighter %d baseline: HR %.0f bpm, HRV %.0f ms, reactivity %.2f\n",
			s.ID, b.HeartRate, b.HRV, s.Reactivity)
	}

	// Run the incident; interleave the three streams.
	phases := physio.StandardIncident()
	fmt.Println("\nincident timeline:")
	for _, p := range phases {
		fmt.Printf("  %-16s %v (exertion %.1f, stress %.1f)\n", p.Name, p.Duration, p.Exertion, p.Stress)
	}
	streams := map[uint64][]physio.Sample{}
	for _, s := range subjects {
		samples, err := physio.Simulate(s, phases, physio.SimulateConfig{Seed: 20 + s.ID, FaultRate: 0.01})
		if err != nil {
			log.Fatal(err)
		}
		streams[s.ID] = samples
	}

	fmt.Println("\ncommander console (1-minute cadence):")
	fmt.Println("  t+min  ff  fitness  arousal  valence  dominant      advice")
	n := len(streams[1])
	faults := 0
	for i := 0; i < n; i++ {
		for _, s := range subjects {
			sample := streams[s.ID][i]
			st, err := mapper.Map(baselines[s.ID], sample)
			if err != nil {
				faults++ // sensor fault rejected by validation
				continue
			}
			advisor.Observe(st)
		}
		// Print the console once per simulated minute (12 samples at 5 s).
		if i%12 != 11 {
			continue
		}
		for _, s := range subjects {
			a, err := advisor.Advise(s.ID)
			if err != nil {
				continue
			}
			fmt.Printf("  %5d  %2d  %-7s  %7.2f  %+7.2f  %-12s  %s\n",
				(i+1)/12, s.ID, a.Fitness, a.MeanArousal, a.MeanValence, a.Dominant, a.Recommendation)
		}
		fmt.Println()
	}
	fmt.Printf("sensor faults rejected: %d\n", faults)
}
