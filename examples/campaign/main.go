// Campaign reproduces the paper's Figure 6 end to end at laptop scale:
// synthetic population → WebLog ingest → Gradual EIT warmup → SVM propensity
// training on historical waves → the ten push/newsletter evaluation
// campaigns — printing the cumulative redemption curve (Fig. 6a) and the
// per-campaign predictive scores (Fig. 6b), plus the objective-only
// baseline for contrast.
//
// Usage: go run ./examples/campaign [users] [seed]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/campaign"
)

func main() {
	users, seed := 5000, uint64(7)
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			users = v
		}
	}
	if len(os.Args) > 2 {
		if v, err := strconv.Atoi(os.Args[2]); err == nil {
			seed = uint64(v)
		}
	}

	cfg := campaign.DefaultExperiment(users, seed)
	fmt.Printf("SPA configuration: %d users, seed %d, features %s, learner %s\n",
		cfg.Users, cfg.Seed, cfg.Features, cfg.Learner)
	fig, ex, err := campaign.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles built from %d weblog events and %d EIT answers; %d training examples\n\n",
		ex.WebLogEvents, ex.EITAnswers, ex.TrainSize)

	fmt.Println("Fig. 6(a) — cumulative redemption curve (pooled over ten campaigns)")
	fmt.Println("  contacted%  captured%  redemption%")
	for _, p := range fig.Gains {
		bar := strings.Repeat("#", int(p.CapturedFrac*40))
		fmt.Printf("  %9.0f%%  %8.1f%%  %10.1f%%  %s\n",
			p.ContactedFrac*100, p.CapturedFrac*100, p.Redemption*100, bar)
	}
	fmt.Printf("\n  at 40%% of commercial action: %.1f%% of useful impacts (paper: >76%%)\n\n",
		fig.CapturedAt40*100)

	fmt.Println("Fig. 6(b) — predictive scores per campaign")
	fmt.Println("  campaign                               kind        score   impacts")
	for _, r := range fig.PerCampaign {
		fmt.Printf("  c%02d %-34s %-10s %5.1f%%  %8d\n",
			r.Campaign.ID, r.Campaign.Product.Name, r.Campaign.Kind,
			r.PredictiveScore*100, r.UsefulImpacts)
	}
	fmt.Printf("\n  average predictive score : %5.1f%%  (paper: 21%%)\n", fig.AvgPredictiveScore*100)
	fmt.Printf("  total useful impacts     : %d of %d contacted\n", fig.TotalUsefulImpacts, fig.TotalContacted)
	fmt.Printf("  untargeted redemption    : %5.1f%%\n", fig.ObservedRate*100)
	fmt.Printf("  redemption improvement   : %+5.1f%%  (paper: +90%%)\n", fig.RedemptionImprovement*100)
	fmt.Printf("  pooled AUC               : %.3f\n\n", fig.AUC)

	// Baseline: the pre-SPA process (objective-only logistic regression).
	cfgB := cfg
	cfgB.Features = campaign.ObjectiveOnly()
	cfgB.Learner = campaign.LearnerLogistic
	figB, _, err := campaign.RunExperiment(cfgB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Baseline (objective-only logistic regression):")
	fmt.Printf("  captured at 40%%          : %5.1f%%  (SPA: %.1f%%)\n", figB.CapturedAt40*100, fig.CapturedAt40*100)
	fmt.Printf("  average predictive score : %5.1f%%  (SPA: %.1f%%)\n", figB.AvgPredictiveScore*100, fig.AvgPredictiveScore*100)
	fmt.Printf("  pooled AUC               : %.3f  (SPA: %.3f)\n", figB.AUC, fig.AUC)
}
