// Messaging reproduces the paper's Figure 5: the three kinds of
// individualized messages the Messaging Agent assigns, driven by each
// user's dominant sensibilities —
//
//	(a) one matching attribute            → that attribute's message (3.b),
//	(b) several matches, priority policy  → highest-priority message (3.c.i),
//	(c) several matches, sensibility rule → strongest-sensibility message (3.c.ii).
package main

import (
	"fmt"
	"log"

	"repro/internal/emotion"
	"repro/internal/messaging"
)

func main() {
	db := messaging.NewDB()
	samples, err := messaging.Fig5(db, "Course in Digital Marketing")
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range samples {
		fmt.Printf("%s\n", s.Label)
		fmt.Printf("  case     : %s\n", s.Case)
		if len(s.Attributes) > 0 {
			fmt.Printf("  matched  : ")
			for i, a := range s.Attributes {
				if i > 0 {
					fmt.Print(" > ")
				}
				fmt.Print(a)
			}
			fmt.Println()
		}
		fmt.Printf("  message  : %s\n\n", s.Rendered)
	}

	// Beyond the figure: the standard-message fallback (case 3.a) for a
	// user with no sensibilities over the product's sales attributes.
	product := messaging.Product{
		Name: "English B2 Certification",
		SalesAttributes: []emotion.Attribute{
			emotion.Hopeful, emotion.Shy, emotion.Frightened,
		},
	}
	none := make([]float64, emotion.NumAttributes)
	asg, err := db.Assign(product, none, 0.5, messaging.ByPriority)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no sensibilities\n  case     : %s\n  message  : %s\n", asg.Case, asg.Rendered)
}
