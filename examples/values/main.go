// Values demonstrates the fifth SPA component (Fig. 3): the Human Values
// Scale. Two users state their value preferences; their actions either
// confirm or contradict the statement, and the coherence function — "the
// coherence function between a user's actions and his/her implicit and
// explicit preferences" (§4 component 5) — quantifies the gap. The example
// also shows life-cycle drift detection.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/values"
)

func main() {
	now := clock.Epoch

	// User A: claims achievement-driven, acts achievement-driven.
	a := values.NewTracker(nil, 0, now)
	var statedA values.Scale
	statedA[values.Achievement] = 0.6
	statedA[values.SelfDirection] = 0.4
	a.SetExplicit(statedA)

	// User B: claims the same, but browses for fun and sticks to known
	// providers.
	b := values.NewTracker(nil, 0, now)
	b.SetExplicit(statedA)

	t := now
	for week := 0; week < 8; week++ {
		t = t.Add(7 * 24 * time.Hour)
		mustObserve(a, "enroll_career_course", 1, t)
		mustObserve(a, "request_certification_info", 1, t)
		mustObserve(b, "enroll_hobby_course", 1, t)
		mustObserve(b, "repeat_known_provider", 1, t)
	}

	printUser := func(name string, tr *values.Tracker) {
		imp := tr.Implicit()
		fmt.Printf("%s — implicit scale (top 3):", name)
		for _, v := range imp.Top(3) {
			fmt.Printf("  %s %.0f%%", v, imp[v]*100)
		}
		c, err := tr.Coherence()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — coherence with stated preferences: %.2f\n\n", name, c)
	}
	fmt.Println("both users state: achievement 60%, self-direction 40%")
	printUser("user A (acts as stated)", a)
	printUser("user B (acts otherwise)", b)

	// Life-cycle drift: user A changes jobs and turns exploratory.
	a.TakeSnapshot(t)
	for week := 0; week < 30; week++ {
		t = t.Add(7 * 24 * time.Hour)
		mustObserve(a, "browse_new_topics", 2, t)
		mustObserve(a, "enroll_hobby_course", 1, t)
	}
	a.TakeSnapshot(t)
	drift, err := a.Drift()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user A after a 30-week life change — scale drift: %.2f (0 = stable)\n", drift)
	imp := a.Implicit()
	fmt.Printf("user A new top values:")
	for _, v := range imp.Top(3) {
		fmt.Printf("  %s %.0f%%", v, imp[v]*100)
	}
	fmt.Println()
}

func mustObserve(tr *values.Tracker, cat string, w float64, t time.Time) {
	if err := tr.Observe(cat, w, t); err != nil {
		log.Fatal(err)
	}
}
