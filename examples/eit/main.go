// EIT walks through a Gradual Emotional Intelligence Test session (§3
// stage 1 of the paper): the Four-Branch item bank, one question per touch,
// and how answers gradually activate emotional attributes with valences.
//
// Two simulated users answer the same questions differently — an eager
// learner and an anxious one — and the program prints how their Smart User
// Models diverge.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/emotion"
	"repro/internal/sum"
)

func main() {
	// Table 1: the Four-Branch Model the item bank is organized around.
	fmt.Println("Table 1 — Four-Branch Model of Emotional Intelligence (MSCEIT V2.0)")
	for _, row := range emotion.Table1() {
		fmt.Printf("\n%s\n  %s\n  deployed attributes:", row.Branch, row.Description)
		for _, a := range row.Attributes {
			fmt.Printf(" %s(%+.1f)", a, a.BaseValence())
		}
		fmt.Println()
	}

	model, err := sum.NewModel(sum.DefaultParams(), nil)
	if err != nil {
		log.Fatal(err)
	}
	now := clock.Epoch
	eager := sum.NewProfile(1, now)
	anxious := sum.NewProfile(2, now)

	fmt.Printf("\nGradual EIT session — %d items, one per touch\n", model.Bank().Len())
	for touch := 0; touch < 16; touch++ {
		now = now.Add(24 * time.Hour)
		itemE, err := model.NextItem(eager)
		if err != nil {
			break
		}
		itemA, _ := model.NextItem(anxious)
		if touch < 4 {
			fmt.Printf("\nQ%d [%s] %s\n", touch+1, itemE.Branch, itemE.Prompt)
			fmt.Printf("  eager   answers: %q\n", itemE.Options[0].Text)
			fmt.Printf("  anxious answers: %q\n", itemA.Options[1].Text)
		}
		// The eager user always picks the approach option, the anxious user
		// the avoidance one.
		if err := model.ApplyEITAnswer(eager, emotion.Answer{ItemID: itemE.ID, Option: 0}, now); err != nil {
			log.Fatal(err)
		}
		if err := model.ApplyEITAnswer(anxious, emotion.Answer{ItemID: itemA.ID, Option: 1}, now); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nLearned emotional state after 16 touches:")
	fmt.Println("  attribute       eager(act, val)    anxious(act, val)")
	for _, a := range emotion.AllAttributes() {
		e := eager.Emotional[a]
		x := anxious.Emotional[a]
		if e.Activation == 0 && x.Activation == 0 {
			continue
		}
		fmt.Printf("  %-14s  (%.2f, %+.2f)      (%.2f, %+.2f)\n",
			a, e.Activation, float64(e.Valence), x.Activation, float64(x.Valence))
	}

	fmt.Println("\nAdvice-stage excitation for the training domain:")
	advE := model.Advise(eager, "training")
	advA := model.Advise(anxious, "training")
	for _, a := range emotion.AllAttributes() {
		if advE.Excitation[a] == 0 && advA.Excitation[a] == 0 {
			continue
		}
		fmt.Printf("  %-14s eager %+.2f   anxious %+.2f\n", a, advE.Excitation[a], advA.Excitation[a])
	}
}
