// Command spad is the SPA daemon: it opens (or creates) a profile store,
// wires the sharded core behind the HTTP/JSON wire API of internal/server,
// and serves until SIGINT/SIGTERM, at which point it stops admission,
// drains the ingest coalescer, and closes the store — no accepted request
// and no acknowledged write is lost to a shutdown.
//
// Usage:
//
//	spad [-addr :8372] [-stream-addr ADDR] [-data DIR] [-shards 16] [-sync]
//	     [-queue 256] [-max-batch 64] [-max-delay 0s] [-no-coalesce]
//	     [-no-binary] [-pipeline]
//
// An empty -data serves an in-memory (non-durable) instance, useful for
// load experiments; production points -data at a directory and usually
// adds -sync so every group commit is fsynced before it is acknowledged.
//
// Streamed binary ingest is always reachable as an HTTP upgrade on
// /v1/ingest/stream (unless -no-binary); -stream-addr additionally opens a
// raw TCP listener speaking the same framed protocol without the HTTP
// handshake. SIGTERM drains streams too: live sessions get a drain frame,
// their in-flight frames commit and are answered, then the coalescer and
// store close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	streamAddr := flag.String("stream-addr", "", "raw TCP streamed-ingest listener address (empty: stream via HTTP upgrade only)")
	data := flag.String("data", "", "profile store directory (empty: in-memory, non-durable)")
	shards := flag.Int("shards", 16, "profile shard count (rounded up to a power of two)")
	sync := flag.Bool("sync", false, "fsync the WAL on every group commit")
	queue := flag.Int("queue", 256, "pending ingest queue depth (full queue answers 503)")
	maxBatch := flag.Int("max-batch", 64, "max requests merged into one group commit")
	maxDelay := flag.Duration("max-delay", 0, "linger before committing a partial batch (0: commit whatever is pending)")
	noCoalesce := flag.Bool("no-coalesce", false, "commit every ingest request on its own (measurement baseline)")
	noBinary := flag.Bool("no-binary", false, "refuse the binary ingest framing (clients fall back to JSON)")
	pipeline := flag.Bool("pipeline", false, "pipeline the coalescer: overlap a wave's CPU-bound prepare with the previous wave's store commit")
	flag.Parse()

	if err := run(*addr, *streamAddr, *data, *shards, *sync, *queue, *maxBatch, *maxDelay, *noCoalesce, *noBinary, *pipeline); err != nil {
		fmt.Fprintf(os.Stderr, "spad: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, streamAddr, data string, shards int, sync bool, queue, maxBatch int, maxDelay time.Duration, noCoalesce, noBinary, pipeline bool) error {
	spa, err := core.New(core.Options{
		DataDir: data,
		Store:   store.Options{SyncWrites: sync},
		Shards:  shards,
	})
	if err != nil {
		return err
	}

	srv := server.New(spa, server.Options{
		DisableCoalescing: noCoalesce,
		QueueDepth:        queue,
		MaxBatch:          maxBatch,
		MaxDelay:          maxDelay,
		DisableBinary:     noBinary,
		Pipeline:          pipeline,
	})
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	var streamLn net.Listener
	if streamAddr != "" {
		var err error
		streamLn, err = net.Listen("tcp", streamAddr)
		if err != nil {
			spa.Close()
			return fmt.Errorf("stream listener: %w", err)
		}
		go func() {
			if err := srv.ServeStream(streamLn); err != nil {
				log.Printf("spad: stream listener: %v", err)
			}
		}()
		log.Printf("spad: streamed ingest on raw tcp %s", streamLn.Addr())
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("spad: serving on %s (data=%q shards=%d sync=%v coalesce=%v pipeline=%v, %d users loaded)",
			addr, data, shards, sync, !noCoalesce, pipeline && !noCoalesce, spa.Users())
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("spad: %v — draining", sig)
	case err := <-errCh:
		if streamLn != nil {
			streamLn.Close()
		}
		srv.Close()
		spa.Close()
		return err
	}

	// Shutdown order matters: stop accepting connections and finish
	// in-flight handlers, stop accepting raw stream connections, then
	// drain stream sessions and the coalescer (srv.Close — handlers and
	// stream readers already enqueued are waiting on it), then flush and
	// close the store.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("spad: http shutdown: %v", err)
	}
	if streamLn != nil {
		streamLn.Close()
	}
	srv.Close()
	if err := spa.Close(); err != nil {
		return fmt.Errorf("closing store: %w", err)
	}
	log.Printf("spad: drained and closed")
	return nil
}
