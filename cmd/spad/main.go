// Command spad is the SPA daemon: it opens (or creates) a profile store,
// wires the sharded core behind the HTTP/JSON wire API of internal/server,
// and serves until SIGINT/SIGTERM, at which point it stops admission,
// drains the ingest coalescer, and closes the store — no accepted request
// and no acknowledged write is lost to a shutdown.
//
// Usage:
//
//	spad [-addr :8372] [-stream-addr ADDR] [-data DIR] [-shards 16] [-sync]
//	     [-queue 256] [-max-batch 64] [-max-delay 0s] [-no-coalesce]
//	     [-no-binary] [-pipeline] [-debug-addr ADDR] [-access-log]
//	     [-slow-wave 1s] [-follow LEADER] [-repl-window 256]
//	     [-cluster] [-node-id ID] [-cluster-addr HOST:PORT] [-peers ID=HOST:PORT,...]
//
// An empty -data serves an in-memory (non-durable) instance, useful for
// load experiments; production points -data at a directory and usually
// adds -sync so every group commit is fsynced before it is acknowledged.
//
// -cluster makes this spad one node of a slot-partitioned cluster
// (internal/server cluster.go): users hash to 256 fixed slots, each slot
// is owned by exactly one node, and requests for users this node does not
// own bounce 421 + X-SPA-Owner so a topology-aware client retries against
// the owner. -node-id names the node (required with -cluster); -peers
// lists the other nodes as comma-separated id=host:port pairs, giving
// every node the same deterministic epoch-1 slot map and a gossip target
// set; -cluster-addr is this node's advertised client-reachable address
// (defaults to -addr with a loopback host filled in). Slots move between
// live nodes via POST /v1/cluster/handoff on the receiving node.
// -cluster and -follow are mutually exclusive: a cluster node is a leader
// for the slots it owns.
//
// -follow LEADER (host:port or URL) starts this spad as a read-only
// replication follower: before the core opens it bootstraps the -data
// directory from the leader (a state snapshot when the local position
// predates the leader's retained WAL history), then applies the leader's
// committed waves live. Every read endpoint serves from replicated state;
// writes answer 421 naming the leader. Requires -data.
//
// Streamed binary ingest is always reachable as an HTTP upgrade on
// /v1/ingest/stream (unless -no-binary); -stream-addr additionally opens a
// raw TCP listener speaking the same framed protocol without the HTTP
// handshake. SIGTERM drains streams too: live sessions get a drain frame,
// their in-flight frames commit and are answered, then the coalescer and
// store close. /readyz flips to 503 "draining" the moment the signal
// arrives — before the listener shuts — so load balancers route away
// first; /healthz keeps answering 200 for as long as the process lives.
//
// Observability: /metrics serves the JSON snapshot by default and the
// Prometheus text exposition under ?format=prometheus or an Accept header
// naming text/plain; /debug/waves shows the last coalescer wave traces;
// -slow-wave logs any wave slower than the threshold; -access-log logs
// one line per request. -debug-addr opens a SEPARATE listener serving
// net/http/pprof — profiling stays off the serving mux and off by
// default; bind it to localhost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/store"
)

// config carries the parsed flags into run.
type config struct {
	addr        string
	streamAddr  string
	debugAddr   string
	data        string
	shards      int
	sync        bool
	queue       int
	maxBatch    int
	maxDelay    time.Duration
	noCoalesce  bool
	noBinary    bool
	pipeline    bool
	lockedReads bool
	accessLog   bool
	slowWave    time.Duration
	follow      string
	replWindow  int
	cluster     bool
	nodeID      string
	clusterAddr string
	peers       string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8372", "listen address")
	flag.StringVar(&cfg.streamAddr, "stream-addr", "", "raw TCP streamed-ingest listener address (empty: stream via HTTP upgrade only)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "separate net/http/pprof listener address (empty: profiling off; bind to localhost)")
	flag.StringVar(&cfg.data, "data", "", "profile store directory (empty: in-memory, non-durable)")
	flag.IntVar(&cfg.shards, "shards", 16, "profile shard count (rounded up to a power of two)")
	flag.BoolVar(&cfg.sync, "sync", false, "fsync the WAL on every group commit")
	flag.IntVar(&cfg.queue, "queue", 256, "pending ingest queue depth (full queue answers 503)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 64, "max requests merged into one group commit")
	flag.DurationVar(&cfg.maxDelay, "max-delay", 0, "linger before committing a partial batch (0: commit whatever is pending)")
	flag.BoolVar(&cfg.noCoalesce, "no-coalesce", false, "commit every ingest request on its own (measurement baseline)")
	flag.BoolVar(&cfg.noBinary, "no-binary", false, "refuse the binary ingest framing (clients fall back to JSON)")
	flag.BoolVar(&cfg.pipeline, "pipeline", false, "pipeline the coalescer: overlap a wave's CPU-bound prepare with the previous wave's store commit")
	flag.BoolVar(&cfg.lockedReads, "locked-reads", false, "serve reads under shard locks instead of epoch snapshots (measurement baseline)")
	flag.BoolVar(&cfg.accessLog, "access-log", false, "log one line per completed HTTP request")
	flag.DurationVar(&cfg.slowWave, "slow-wave", time.Second, "log any coalescer wave slower than this gather-to-commit (0: off)")
	flag.StringVar(&cfg.follow, "follow", "", "replicate from this leader (host:port or URL) and serve reads only; requires -data")
	flag.IntVar(&cfg.replWindow, "repl-window", 256, "replication wave credit granted to the leader")
	flag.BoolVar(&cfg.cluster, "cluster", false, "serve as one node of a slot-partitioned cluster (requires -node-id)")
	flag.StringVar(&cfg.nodeID, "node-id", "", "this node's cluster id")
	flag.StringVar(&cfg.clusterAddr, "cluster-addr", "", "advertised client-reachable address (default: -addr with a loopback host)")
	flag.StringVar(&cfg.peers, "peers", "", "other cluster nodes as id=host:port, comma-separated")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spad: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	var peers map[string]string
	clusterAddr := ""
	if cfg.cluster {
		if cfg.nodeID == "" {
			return errors.New("-cluster requires -node-id")
		}
		if cfg.follow != "" {
			return errors.New("-cluster and -follow are mutually exclusive (a cluster node leads its own slots)")
		}
		var err error
		if peers, err = parsePeers(cfg.peers); err != nil {
			return err
		}
		if clusterAddr, err = advertisedAddr(cfg.clusterAddr, cfg.addr); err != nil {
			return err
		}
	} else if cfg.nodeID != "" || cfg.peers != "" || cfg.clusterAddr != "" {
		return errors.New("-node-id, -peers and -cluster-addr need -cluster")
	}

	stOpts := store.Options{SyncWrites: cfg.sync}
	var bootstrapBytes int64
	if cfg.follow != "" {
		if cfg.data == "" {
			return errors.New("-follow requires -data (replication ships the WAL)")
		}
		// The store-level bootstrap must happen before the core opens: the
		// core loads its shard memory from the store exactly once, so a
		// snapshot restored after New would be invisible until a restart.
		var err error
		bootstrapBytes, err = server.BootstrapFollower(cfg.data, cfg.follow, stOpts)
		if err != nil {
			return fmt.Errorf("bootstrapping from %s: %w", cfg.follow, err)
		}
		if bootstrapBytes > 0 {
			log.Printf("spad: bootstrapped %d snapshot bytes from %s", bootstrapBytes, cfg.follow)
		}
	}
	spa, err := core.New(core.Options{
		DataDir:     cfg.data,
		Store:       stOpts,
		Shards:      cfg.shards,
		LockedReads: cfg.lockedReads,
	})
	if err != nil {
		return err
	}

	srv := server.New(spa, server.Options{
		DisableCoalescing:      cfg.noCoalesce,
		QueueDepth:             cfg.queue,
		MaxBatch:               cfg.maxBatch,
		MaxDelay:               cfg.maxDelay,
		DisableBinary:          cfg.noBinary,
		Pipeline:               cfg.pipeline,
		AccessLog:              cfg.accessLog,
		SlowWave:               cfg.slowWave,
		FollowerOf:             cfg.follow,
		ReplWindow:             cfg.replWindow,
		FollowerBootstrapBytes: bootstrapBytes,
		ClusterNodeID:          cfg.nodeID,
		ClusterAddr:            clusterAddr,
		ClusterPeers:           peers,
		ClusterDir:             cfg.data,
	})
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	var streamLn net.Listener
	if cfg.streamAddr != "" {
		var err error
		streamLn, err = net.Listen("tcp", cfg.streamAddr)
		if err != nil {
			spa.Close()
			return fmt.Errorf("stream listener: %w", err)
		}
		go func() {
			if err := srv.ServeStream(streamLn); err != nil {
				log.Printf("spad: stream listener: %v", err)
			}
		}()
		log.Printf("spad: streamed ingest on raw tcp %s", streamLn.Addr())
	}

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		// The pprof handlers live on http.DefaultServeMux (the blank
		// net/http/pprof import), which the serving path never touches —
		// profiling traffic cannot reach the API listener and vice versa.
		debugSrv = &http.Server{Addr: cfg.debugAddr, Handler: http.DefaultServeMux}
		go func() {
			log.Printf("spad: pprof on %s/debug/pprof/", cfg.debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("spad: debug listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		role := ""
		if cfg.follow != "" {
			role = " follower-of=" + cfg.follow
		}
		if cfg.cluster {
			role = fmt.Sprintf(" cluster-node=%s advertised=%s peers=%d", cfg.nodeID, clusterAddr, len(peers))
		}
		log.Printf("spad: serving on %s (data=%q shards=%d sync=%v coalesce=%v pipeline=%v%s, %d users loaded)",
			cfg.addr, cfg.data, cfg.shards, cfg.sync, !cfg.noCoalesce, cfg.pipeline && !cfg.noCoalesce, role, spa.Users())
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("spad: %v — draining", sig)
	case err := <-errCh:
		if streamLn != nil {
			streamLn.Close()
		}
		srv.Close()
		spa.Close()
		return err
	}

	// Shutdown order matters: flip /readyz to "draining" so load balancers
	// route away while the listener still answers, stop accepting
	// connections and finish in-flight handlers, stop accepting raw stream
	// connections, then drain stream sessions and the coalescer (srv.Close
	// — handlers and stream readers already enqueued are waiting on it),
	// then flush and close the store.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("spad: http shutdown: %v", err)
	}
	if streamLn != nil {
		streamLn.Close()
	}
	srv.Close()
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := spa.Close(); err != nil {
		return fmt.Errorf("closing store: %w", err)
	}
	log.Printf("spad: drained and closed")
	return nil
}

// parsePeers splits "-peers a=host:port,b=host:port" into a map.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=host:port", pair)
		}
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return nil, fmt.Errorf("-peers entry %q: %w", pair, err)
		}
		peers[id] = addr
	}
	return peers, nil
}

// advertisedAddr resolves the address peers and clients reach this node
// at: the explicit -cluster-addr, or -addr with an unspecified host
// ("", 0.0.0.0, ::) replaced by loopback — good enough for the
// single-machine clusters the flag default targets; multi-host deployments
// must set -cluster-addr.
func advertisedAddr(explicit, listen string) (string, error) {
	if explicit != "" {
		if _, _, err := net.SplitHostPort(explicit); err != nil {
			return "", fmt.Errorf("-cluster-addr %q: %w", explicit, err)
		}
		return explicit, nil
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return "", fmt.Errorf("deriving -cluster-addr from -addr %q: %w", listen, err)
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port), nil
}
