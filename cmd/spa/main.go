// Command spa is the command-line front end of the reproduction. It
// regenerates each of the paper's evaluation artifacts on demand:
//
//	spa table1                      — Table 1 (Four-Branch Model)
//	spa fig5                        — Figure 5 (individualized messages)
//	spa fig6   [-users] [-seed] ... — Figure 6 (redemption curve + scores)
//	spa gen    [-users] [-weeks]    — synthetic WebLog generation to disk
//	spa ablate [-users] [-seed]     — the A1–A3 ablations from DESIGN.md
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "table1":
		err = cmdTable1()
	case "fig5":
		err = cmdFig5(os.Args[2:])
	case "fig6":
		err = cmdFig6(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "ablate":
		err = cmdAblate(os.Args[2:])
	case "inventory":
		err = cmdInventory(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "spa: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spa: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: spa <command> [flags]

commands:
  table1    print the Four-Branch Model of Emotional Intelligence (paper Table 1)
  fig5      print the individualized-message samples (paper Figure 5)
  fig6      run the ten-campaign evaluation (paper Figure 6a + 6b)
  gen       generate a synthetic WebLog directory
  ablate    run the A1-A3 ablations (features / learners / reward-punish)
  inventory print the attribute inventory with measured density (paper §5.1)

related binaries:
  spad      the SPA serving daemon (HTTP/JSON wire API; see cmd/spad);
            talk to it with the internal/spaclient package
  spabench  the evaluation harness; -loadgen URL drives a running spad`)
}

func experimentFlags(fs *flag.FlagSet) (users *int, seed *uint64, depth *float64) {
	users = fs.Int("users", 5000, "population size (paper: 1340432)")
	seed = fs.Uint64("seed", 7, "experiment seed")
	depth = fs.Float64("depth", 0.40, "selection depth (fraction contacted)")
	return
}
