package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/emotion"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/ranking"
	"repro/internal/synth"
)

func cmdTable1() error {
	fmt.Println("Table 1 — Four-Branch Model of Emotional Intelligence (MSCEIT V2.0)")
	fmt.Println(strings.Repeat("=", 76))
	for _, row := range emotion.Table1() {
		fmt.Printf("\n%s\n%s\n", row.Branch, strings.Repeat("-", len(row.Branch.String())))
		fmt.Printf("%s.\n", row.Description)
		fmt.Printf("Deployed attributes probing this branch:")
		for _, a := range row.Attributes {
			fmt.Printf("  %s (valence %+.1f)", a, a.BaseValence())
		}
		fmt.Println()
	}
	return nil
}

func cmdFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	product := fs.String("product", "Course in Digital Marketing", "course to sell")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db := messaging.NewDB()
	samples, err := messaging.Fig5(db, *product)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5 — individualized messages by dominant sensibilities")
	fmt.Println(strings.Repeat("=", 76))
	for _, s := range samples {
		fmt.Printf("\n%s  [case %s]\n", s.Label, s.Case)
		if len(s.Attributes) > 0 {
			names := make([]string, len(s.Attributes))
			for i, a := range s.Attributes {
				names[i] = a.String()
			}
			fmt.Printf("  matched: %s\n", strings.Join(names, " > "))
		}
		fmt.Printf("  %s\n", s.Rendered)
	}
	return nil
}

func cmdFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	users, seed, depth := experimentFlags(fs)
	learner := fs.String("learner", "svm-pegasos", "svm-pegasos | svm-dualcd | logistic | random | popularity")
	features := fs.String("features", "OSE", "feature blocks: any of O (objective), S (subjective), E (emotional)")
	baseline := fs.Bool("baseline", true, "also run the objective-only logistic baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := campaign.DefaultExperiment(*users, *seed)
	cfg.Depth = *depth
	var err error
	cfg.Learner, err = parseLearner(*learner)
	if err != nil {
		return err
	}
	cfg.Features = parseFeatures(*features)

	fmt.Printf("Figure 6 — %d users, seed %d, depth %.0f%%, learner %s, features %s\n",
		cfg.Users, cfg.Seed, cfg.Depth*100, cfg.Learner, cfg.Features)
	fig, ex, err := campaign.RunExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("profiles: %d weblog events, %d EIT answers, %d training rows\n\n",
		ex.WebLogEvents, ex.EITAnswers, ex.TrainSize)

	fmt.Println("(a) cumulative redemption curve, pooled over ten campaigns")
	fmt.Println("    contacted%   captured%   redemption%")
	for _, p := range fig.Gains {
		fmt.Printf("    %9.0f%%   %8.1f%%   %10.1f%%  %s\n",
			p.ContactedFrac*100, p.CapturedFrac*100, p.Redemption*100,
			strings.Repeat("#", int(p.CapturedFrac*40)))
	}
	fmt.Printf("    capture at 40%% commercial action: %.1f%%   (paper: >76%%)\n\n", fig.CapturedAt40*100)

	var pooled []ranking.Scored
	for _, r := range fig.PerCampaign {
		pooled = append(pooled, r.Scored...)
	}
	if deciles, derr := ranking.DecileTable(pooled); derr == nil {
		fmt.Println("    decile lift table (pooled):")
		fmt.Println("    decile   rate    lift   cum-capture")
		for _, d := range deciles {
			fmt.Printf("    %6d  %5.1f%%  %5.2f  %10.1f%%\n", d.Decile, d.Rate*100, d.Lift, d.CumCapture*100)
		}
		fmt.Println()
	}

	fmt.Println("(b) predictive scores per campaign")
	for _, r := range fig.PerCampaign {
		fmt.Printf("    c%02d %-36s %-10s %5.1f%%  %7d impacts\n",
			r.Campaign.ID, r.Campaign.Product.Name, r.Campaign.Kind,
			r.PredictiveScore*100, r.UsefulImpacts)
	}
	fmt.Printf("\n    average predictive score : %.1f%%   (paper: 21%%)\n", fig.AvgPredictiveScore*100)
	fmt.Printf("    total useful impacts     : %d / %d contacted (paper: 282,938 / 1,340,432 targets)\n",
		fig.TotalUsefulImpacts, fig.TotalContacted)
	fmt.Printf("    untargeted redemption    : %.1f%%\n", fig.ObservedRate*100)
	fmt.Printf("    redemption improvement   : %+.1f%%   (paper: +90%%)\n", fig.RedemptionImprovement*100)
	fmt.Printf("    pooled AUC               : %.3f\n", fig.AUC)

	if *baseline {
		cfgB := cfg
		cfgB.Features = campaign.ObjectiveOnly()
		cfgB.Learner = campaign.LearnerLogistic
		figB, _, err := campaign.RunExperiment(cfgB)
		if err != nil {
			return err
		}
		fmt.Printf("\nbaseline (objective-only logistic): capture@40 %.1f%%, score %.1f%%, AUC %.3f\n",
			figB.CapturedAt40*100, figB.AvgPredictiveScore*100, figB.AUC)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	users := fs.Int("users", 5000, "population size")
	seed := fs.Uint64("seed", 7, "seed")
	weeks := fs.Int("weeks", 4, "weeks of browsing")
	out := fs.String("out", "weblogs", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pop, err := synth.Generate(synth.DefaultConfig(*users, *seed))
	if err != nil {
		return err
	}
	w, err := lifelog.NewWriter(*out, 0)
	if err != nil {
		return err
	}
	cfg := synth.WebLogConfig{Weeks: *weeks, Seed: *seed + 1, TransactionBias: 0.35}
	if err := pop.GenerateWebLogs(cfg, w.Append); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d events for %d users over %d weeks to %s\n", w.Count(), *users, *weeks, *out)
	return nil
}

func cmdAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	users, seed, depth := experimentFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := campaign.DefaultExperiment(*users, *seed)
	base.Depth = *depth

	fmt.Printf("Ablations — %d users, seed %d, depth %.0f%%\n\n", *users, *seed, *depth*100)

	fmt.Println("A1: feature sets (learner = svm-pegasos)")
	for _, fsel := range []campaign.FeatureSet{
		campaign.ObjectiveOnly(),
		{Objective: true, Subjective: true},
		campaign.FullFeatures(),
	} {
		cfg := base
		cfg.Features = fsel
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("    %-4s capture@40 %5.1f%%  score %5.1f%%  AUC %.3f\n",
			fsel, fig.CapturedAt40*100, fig.AvgPredictiveScore*100, fig.AUC)
	}

	fmt.Println("\nA2: learners (features = OSE)")
	for _, l := range []campaign.Learner{
		campaign.LearnerSVM, campaign.LearnerSVMDual, campaign.LearnerLogistic,
		campaign.LearnerRandom, campaign.LearnerPopularity,
	} {
		cfg := base
		cfg.Learner = l
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("    %-12s capture@40 %5.1f%%  score %5.1f%%\n",
			l, fig.CapturedAt40*100, fig.AvgPredictiveScore*100)
	}

	fmt.Println("\nA3: reward/punish loop during evaluation")
	for _, update := range []bool{true, false} {
		cfg := base
		cfg.UpdateSUM = update
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("    update=%-5v capture@40 %5.1f%%  score %5.1f%%  AUC %.3f\n",
			update, fig.CapturedAt40*100, fig.AvgPredictiveScore*100, fig.AUC)
	}
	return nil
}

func cmdInventory(args []string) error {
	fs := flag.NewFlagSet("inventory", flag.ExitOnError)
	users := fs.Int("users", 2000, "population size")
	seed := fs.Uint64("seed", 7, "seed")
	warmup := fs.Int("warmup", 20, "Gradual EIT warmup touches before measuring")
	weeks := fs.Int("weeks", 4, "weeks of WebLogs to ingest")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pop, err := synth.Generate(synth.DefaultConfig(*users, *seed))
	if err != nil {
		return err
	}
	pl, err := campaign.NewPipeline(pop, *seed)
	if err != nil {
		return err
	}
	if *weeks > 0 {
		if _, err := pl.IngestWebLogs(*weeks, *seed+1); err != nil {
			return err
		}
	}
	if *warmup > 0 {
		if _, err := pl.WarmupEIT(*warmup); err != nil {
			return err
		}
	}
	inv, err := pl.AttributeInventory()
	if err != nil {
		return err
	}
	fmt.Printf("Attribute inventory — %d users, %d EIT touches, %d weeks of WebLogs\n", *users, *warmup, *weeks)
	fmt.Println("  kind        attribute                    density    mean       std")
	for _, r := range inv {
		fmt.Printf("  %-10s  %-27s %6.1f%%  %9.3f  %9.3f\n", r.Kind, r.Name, r.Density*100, r.Mean, r.Std)
	}
	return nil
}

func parseLearner(s string) (campaign.Learner, error) {
	switch s {
	case "svm-pegasos":
		return campaign.LearnerSVM, nil
	case "svm-dualcd":
		return campaign.LearnerSVMDual, nil
	case "logistic":
		return campaign.LearnerLogistic, nil
	case "random":
		return campaign.LearnerRandom, nil
	case "popularity":
		return campaign.LearnerPopularity, nil
	default:
		return 0, fmt.Errorf("unknown learner %q", s)
	}
}

func parseFeatures(s string) campaign.FeatureSet {
	var fsel campaign.FeatureSet
	for _, c := range s {
		switch c {
		case 'O', 'o':
			fsel.Objective = true
		case 'S', 's':
			fsel.Subjective = true
		case 'E', 'e':
			fsel.Emotional = true
		}
	}
	return fsel
}
