// Command spabench regenerates every evaluation artifact of the paper and
// prints a paper-vs-measured table — the reproduction's experiment record.
// Absolute numbers are not expected to match (the substrate
// is a synthetic simulator, not emagister.com's production traffic); the
// shape — who wins, by roughly what factor, where the operating point falls
// — is the reproduction target.
//
// Usage: spabench [-users N] [-seed S] [-skip-ablations] [-skip-scale]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/emotion"
	"repro/internal/messaging"
	"repro/internal/scalebench"
	"repro/internal/store"
)

func main() {
	users := flag.Int("users", 5000, "population per campaign (paper: 1,340,432)")
	seed := flag.Uint64("seed", 7, "experiment seed")
	skipAblations := flag.Bool("skip-ablations", false, "skip A1-A3")
	skipScale := flag.Bool("skip-scale", false, "skip the S1 throughput comparison")
	flag.Parse()

	if err := run(*users, *seed, !*skipAblations, !*skipScale); err != nil {
		fmt.Fprintf(os.Stderr, "spabench: %v\n", err)
		os.Exit(1)
	}
}

func run(users int, seed uint64, ablations, scale bool) error {
	start := time.Now()
	fmt.Printf("SPA reproduction harness — %d users, seed %d\n", users, seed)
	fmt.Println("====================================================================")

	// ---- T1: Table 1 ----
	rows := emotion.Table1()
	attrs := 0
	for _, r := range rows {
		attrs += len(r.Attributes)
	}
	fmt.Println("\n[T1] Four-Branch Model of Emotional Intelligence")
	fmt.Printf("  paper   : 4 branches (MSCEIT V2.0), 10 deployed emotional attributes\n")
	fmt.Printf("  measured: %d branches, %d attributes mapped    %s\n",
		len(rows), attrs, okIf(len(rows) == 4 && attrs == emotion.NumAttributes))

	// ---- F5: Figure 5 ----
	db := messaging.NewDB()
	samples, err := messaging.Fig5(db, "Course in Digital Marketing")
	if err != nil {
		return err
	}
	fmt.Println("\n[F5] Individualized message assignment")
	wantCases := []messaging.Case{messaging.CaseSingle, messaging.CaseMultiPriority, messaging.CaseMultiSensibility}
	allOK := len(samples) == 3
	for i, s := range samples {
		ok := s.Case == wantCases[i]
		allOK = allOK && ok
		fmt.Printf("  %-44s case %-6s %s\n", s.Label, s.Case, okIf(ok))
	}
	fmt.Printf("  paper   : cases 3.b / 3.c.i (lively>stimulated>shy>frightened) / 3.c.ii (hopeful)\n")
	fmt.Printf("  measured: %s\n", okIf(allOK &&
		samples[1].Attributes[0] == emotion.Lively && samples[2].Attributes[0] == emotion.Hopeful))

	// ---- F6: Figure 6 ----
	cfg := campaign.DefaultExperiment(users, seed)
	fig, ex, err := campaign.RunExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\n[F6a] Cumulative redemption curve (pooled, ten campaigns)")
	fmt.Printf("  paper   : 40%% of commercial action -> >76%% of useful impacts\n")
	fmt.Printf("  measured: 40%% of commercial action -> %.1f%% of useful impacts   %s\n",
		fig.CapturedAt40*100, okIf(fig.CapturedAt40 > 0.65))
	fmt.Println("  curve   : contacted% -> captured%")
	for _, p := range fig.Gains {
		if int(p.ContactedFrac*100+0.5)%10 == 0 {
			fmt.Printf("            %3.0f%% -> %5.1f%%\n", p.ContactedFrac*100, p.CapturedFrac*100)
		}
	}

	fmt.Println("\n[F6b] Predictive scores of the ten campaigns")
	fmt.Printf("  paper   : average performance 21%% (282,938 useful impacts of 1,340,432 targets); +90%% redemption\n")
	fmt.Printf("  measured: average predictive score %.1f%%; %d useful impacts of %d contacted; %+.0f%% redemption   %s\n",
		fig.AvgPredictiveScore*100, fig.TotalUsefulImpacts, fig.TotalContacted,
		fig.RedemptionImprovement*100,
		okIf(fig.AvgPredictiveScore > 0.15 && fig.RedemptionImprovement > 0.5))
	for _, r := range fig.PerCampaign {
		fmt.Printf("    c%02d %-10s %5.1f%%  (%d impacts)\n",
			r.Campaign.ID, r.Campaign.Kind, r.PredictiveScore*100, r.UsefulImpacts)
	}
	fmt.Printf("  profiles: %d weblog events, %d EIT answers, %d training rows, pooled AUC %.3f\n",
		ex.WebLogEvents, ex.EITAnswers, ex.TrainSize, fig.AUC)

	// §5.1 data description: the attribute inventory with measured sparsity.
	inv, err := ex.Pipeline.AttributeInventory()
	if err != nil {
		return err
	}
	kinds := map[string]int{}
	var emoDensity float64
	emoCols := 0
	for _, r := range inv {
		kinds[r.Kind]++
		if r.Kind == "emotional" {
			emoDensity += r.Density
			emoCols++
		}
	}
	fmt.Println("\n[D1] Attribute inventory (paper §5.1: 75 objective, subjective and emotional attributes)")
	fmt.Printf("  measured: %d attributes (%d objective, %d subjective, %d emotional); mean emotional coverage %.0f%% after warmup+campaigns\n",
		len(inv), kinds["objective"], kinds["subjective"], kinds["emotional"], 100*emoDensity/float64(emoCols))

	// Baseline contrast (the "previous process").
	cfgB := cfg
	cfgB.Features = campaign.ObjectiveOnly()
	cfgB.Learner = campaign.LearnerLogistic
	figB, _, err := campaign.RunExperiment(cfgB)
	if err != nil {
		return err
	}
	fmt.Println("\n[F6-baseline] Objective-only logistic (pre-SPA process)")
	fmt.Printf("  measured: capture@40 %.1f%% vs SPA %.1f%%; score %.1f%% vs SPA %.1f%%   %s\n",
		figB.CapturedAt40*100, fig.CapturedAt40*100,
		figB.AvgPredictiveScore*100, fig.AvgPredictiveScore*100,
		okIf(fig.CapturedAt40 > figB.CapturedAt40+0.1))

	if ablations {
		if err := runAblations(cfg); err != nil {
			return err
		}
	}
	if scale {
		if err := runScale(); err != nil {
			return err
		}
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runScale is the systems-side comparison: the seed architecture (one
// global mutex, one synchronous store write per profile) against the
// sharded core with per-shard group commit, both durable with fsync on.
// The workload is internal/scalebench, shared with BenchmarkShardedIngest.
func runScale() error {
	const bursts = 48
	fmt.Printf("\n[S1] Sharded core + batched write-through (%d ingest workers, fsync on)\n",
		scalebench.Workers)

	burstEvents := scalebench.MakeBursts()
	measure := func(shards int, unbatched bool) (float64, error) {
		dir, err := os.MkdirTemp("", "spabench-scale-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		spa, err := core.New(core.Options{
			DataDir:         dir,
			Store:           store.Options{SyncWrites: true},
			Shards:          shards,
			UnbatchedWrites: unbatched,
			Clock:           clock.NewSimulated(clock.Epoch),
		})
		if err != nil {
			return 0, err
		}
		defer spa.Close()
		for u := 0; u < scalebench.Users; u++ {
			if err := spa.Register(uint64(u+1), nil); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		if err := scalebench.RunWorkers(bursts, func(i int64) error {
			_, _, err := spa.IngestEvents(burstEvents[i%int64(len(burstEvents))])
			return err
		}); err != nil {
			return 0, err
		}
		return float64(bursts*scalebench.EventsPerBurst) / time.Since(start).Seconds(), nil
	}

	seedRate, err := measure(1, true)
	if err != nil {
		return err
	}
	newRate, err := measure(16, false)
	if err != nil {
		return err
	}
	fmt.Printf("  single mutex + per-profile writes : %8.0f events/s\n", seedRate)
	fmt.Printf("  16 shards + group commit          : %8.0f events/s   (%.1fx)   %s\n",
		newRate, newRate/seedRate, okIf(newRate >= 2*seedRate))
	return nil
}

func runAblations(base campaign.ExperimentConfig) error {
	fmt.Println("\n[A1] Feature-set ablation (svm-pegasos)")
	for _, fsel := range []campaign.FeatureSet{
		campaign.ObjectiveOnly(),
		{Objective: true, Subjective: true},
		campaign.FullFeatures(),
	} {
		cfg := base
		cfg.Features = fsel
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-4s capture@40 %5.1f%%  score %5.1f%%  AUC %.3f\n",
			fsel, fig.CapturedAt40*100, fig.AvgPredictiveScore*100, fig.AUC)
	}

	fmt.Println("\n[A2] Learner ablation (features OSE)")
	for _, l := range []campaign.Learner{
		campaign.LearnerSVM, campaign.LearnerSVMDual, campaign.LearnerLogistic,
		campaign.LearnerRandom, campaign.LearnerPopularity,
	} {
		cfg := base
		cfg.Learner = l
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s capture@40 %5.1f%%  score %5.1f%%\n",
			l, fig.CapturedAt40*100, fig.AvgPredictiveScore*100)
	}

	fmt.Println("\n[A3] Reward/punish loop ablation")
	for _, update := range []bool{true, false} {
		cfg := base
		cfg.UpdateSUM = update
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  update=%-5v capture@40 %5.1f%%  score %5.1f%%  AUC %.3f\n",
			update, fig.CapturedAt40*100, fig.AvgPredictiveScore*100, fig.AUC)
	}
	return nil
}

func okIf(ok bool) string {
	if ok {
		return "[OK]"
	}
	return "[MISMATCH]"
}
