// Command spabench regenerates every evaluation artifact of the paper and
// prints a paper-vs-measured table — the reproduction's experiment record.
// Absolute numbers are not expected to match (the substrate
// is a synthetic simulator, not emagister.com's production traffic); the
// shape — who wins, by roughly what factor, where the operating point falls
// — is the reproduction target.
//
// Usage: spabench [-users N] [-seed S] [-skip-ablations] [-skip-scale]
//
//	[-json] [-clients K] [-requests N] [-loadgen URL] [-no-register]
//	[-stream] [-stream-smoke URL]
//
// -json switches the output to machine-readable results: one JSON object
// per section on stdout (the human table is suppressed), so a bench
// trajectory can be captured as BENCH_*.json instead of scraping text.
//
// -loadgen URL skips the paper sections entirely and drives an already
// running spad (cmd/spad) over its wire API with -clients concurrent
// clients, reporting throughput and latency percentiles — the same
// measurement the self-hosted [S2] section makes. -no-register reuses a
// previous run's population instead of registering (a re-run against the
// same data dir would otherwise count 409s as errors). -stream switches
// the loadgen onto the persistent binary stream transport ([S5]).
//
// -stream-smoke URL is the CI drain probe: it ships frames over one
// stream until the daemon drains (SIGTERM), then reports how many were
// acknowledged — every acknowledged frame was committed before its answer
// was written.
//
// -torture runs the storage torture sweep (internal/torture): randomized
// fault schedules against the durable stack under -torture-budget. A
// failure prints the schedule seed; `spabench -torture -seed N` replays
// that one schedule deterministically.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/emotion"
	"repro/internal/keyspace"
	"repro/internal/lifelog"
	"repro/internal/messaging"
	"repro/internal/scalebench"
	"repro/internal/server"
	"repro/internal/spaclient"
	"repro/internal/store"
	"repro/internal/torture"
	"repro/internal/wire"
)

func main() {
	users := flag.Int("users", 5000, "population per campaign (paper: 1,340,432)")
	seed := flag.Uint64("seed", 7, "experiment seed")
	skipAblations := flag.Bool("skip-ablations", false, "skip A1-A3")
	skipScale := flag.Bool("skip-scale", false, "skip the S1-S9 scale sections")
	jsonOut := flag.Bool("json", false, "emit one JSON object per section instead of the table")
	clients := flag.Int("clients", scalebench.Workers, "concurrent clients for S2/loadgen")
	requests := flag.Int("requests", 2048, "total ingest requests for S2/loadgen")
	loadgen := flag.String("loadgen", "", "drive a running spad at this base URL and exit (e.g. http://127.0.0.1:8372)")
	stream := flag.Bool("stream", false, "with -loadgen: speak the persistent binary stream instead of per-request HTTP")
	noRegister := flag.Bool("no-register", false, "with -loadgen: skip user registration (reuse a previous run's population)")
	streamSmoke := flag.String("stream-smoke", "", "streamed-ingest drain smoke against a running spad at this base URL: ship frames until the daemon drains, then report")
	tortureMode := flag.Bool("torture", false, "run the storage torture sweep and exit; with an explicit -seed N, replay that one fault schedule")
	tortureBudget := flag.Duration("torture-budget", 30*time.Second, "with -torture: wall-clock budget for the sweep")
	tortureSchedules := flag.Int("torture-schedules", 0, "with -torture: max fault schedules (0 = budget-bound)")
	stages := flag.Bool("stages", false, "after [S4]/[S5], rerun the favored mode once instrumented and print the per-stage latency breakdown from /metrics")
	checkMetrics := flag.String("check-metrics", "", "scrape a running spad's /metrics in both formats, cross-check them, and exit (CI smoke)")
	flag.Parse()

	em := &emitter{w: os.Stdout}
	if *jsonOut {
		em.w = io.Discard
		em.enc = json.NewEncoder(os.Stdout)
	}

	var err error
	if *checkMetrics != "" {
		if err := scalebench.CheckMetricsFormats(*checkMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "spabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("metrics formats ok")
		return
	}
	if *tortureMode {
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		err = runTorture(*seed, seedSet, *tortureBudget, *tortureSchedules)
	} else if *streamSmoke != "" {
		err = runStreamSmoke(*streamSmoke)
	} else if *loadgen != "" {
		err = runLoadgen(em, *loadgen, *clients, *requests, *stream, !*noRegister)
	} else {
		err = run(em, *users, *seed, !*skipAblations, !*skipScale, *clients, *requests, *stages)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spabench: %v\n", err)
		os.Exit(1)
	}
}

// emitter fans each section to the human table and/or the JSON stream.
type emitter struct {
	w   io.Writer     // human output; io.Discard in -json mode
	enc *json.Encoder // non-nil in -json mode
}

func (e *emitter) printf(format string, args ...any) {
	fmt.Fprintf(e.w, format, args...)
}

// emit writes one machine-readable section record.
func (e *emitter) emit(section string, v map[string]any) {
	if e.enc == nil {
		return
	}
	v["section"] = section
	e.enc.Encode(v)
}

func run(em *emitter, users int, seed uint64, ablations, scale bool, clients, requests int, stages bool) error {
	start := time.Now()
	em.printf("SPA reproduction harness — %d users, seed %d\n", users, seed)
	em.printf("====================================================================\n")

	// ---- T1: Table 1 ----
	rows := emotion.Table1()
	attrs := 0
	for _, r := range rows {
		attrs += len(r.Attributes)
	}
	em.printf("\n[T1] Four-Branch Model of Emotional Intelligence\n")
	em.printf("  paper   : 4 branches (MSCEIT V2.0), 10 deployed emotional attributes\n")
	em.printf("  measured: %d branches, %d attributes mapped    %s\n",
		len(rows), attrs, okIf(len(rows) == 4 && attrs == emotion.NumAttributes))
	em.emit("T1", map[string]any{
		"branches": len(rows), "attributes": attrs,
		"ok": len(rows) == 4 && attrs == emotion.NumAttributes,
	})

	// ---- F5: Figure 5 ----
	db := messaging.NewDB()
	samples, err := messaging.Fig5(db, "Course in Digital Marketing")
	if err != nil {
		return err
	}
	em.printf("\n[F5] Individualized message assignment\n")
	wantCases := []messaging.Case{messaging.CaseSingle, messaging.CaseMultiPriority, messaging.CaseMultiSensibility}
	allOK := len(samples) == 3
	cases := make([]string, 0, len(samples))
	for i, s := range samples {
		ok := s.Case == wantCases[i]
		allOK = allOK && ok
		cases = append(cases, s.Case.String())
		em.printf("  %-44s case %-6s %s\n", s.Label, s.Case, okIf(ok))
	}
	f5OK := allOK &&
		samples[1].Attributes[0] == emotion.Lively && samples[2].Attributes[0] == emotion.Hopeful
	em.printf("  paper   : cases 3.b / 3.c.i (lively>stimulated>shy>frightened) / 3.c.ii (hopeful)\n")
	em.printf("  measured: %s\n", okIf(f5OK))
	em.emit("F5", map[string]any{"cases": cases, "ok": f5OK})

	// ---- F6: Figure 6 ----
	cfg := campaign.DefaultExperiment(users, seed)
	fig, ex, err := campaign.RunExperiment(cfg)
	if err != nil {
		return err
	}
	em.printf("\n[F6a] Cumulative redemption curve (pooled, ten campaigns)\n")
	em.printf("  paper   : 40%% of commercial action -> >76%% of useful impacts\n")
	em.printf("  measured: 40%% of commercial action -> %.1f%% of useful impacts   %s\n",
		fig.CapturedAt40*100, okIf(fig.CapturedAt40 > 0.65))
	em.printf("  curve   : contacted%% -> captured%%\n")
	for _, p := range fig.Gains {
		if int(p.ContactedFrac*100+0.5)%10 == 0 {
			em.printf("            %3.0f%% -> %5.1f%%\n", p.ContactedFrac*100, p.CapturedFrac*100)
		}
	}
	em.emit("F6a", map[string]any{
		"captured_at_40": fig.CapturedAt40, "ok": fig.CapturedAt40 > 0.65,
	})

	em.printf("\n[F6b] Predictive scores of the ten campaigns\n")
	em.printf("  paper   : average performance 21%% (282,938 useful impacts of 1,340,432 targets); +90%% redemption\n")
	em.printf("  measured: average predictive score %.1f%%; %d useful impacts of %d contacted; %+.0f%% redemption   %s\n",
		fig.AvgPredictiveScore*100, fig.TotalUsefulImpacts, fig.TotalContacted,
		fig.RedemptionImprovement*100,
		okIf(fig.AvgPredictiveScore > 0.15 && fig.RedemptionImprovement > 0.5))
	for _, r := range fig.PerCampaign {
		em.printf("    c%02d %-10s %5.1f%%  (%d impacts)\n",
			r.Campaign.ID, r.Campaign.Kind, r.PredictiveScore*100, r.UsefulImpacts)
	}
	em.printf("  profiles: %d weblog events, %d EIT answers, %d training rows, pooled AUC %.3f\n",
		ex.WebLogEvents, ex.EITAnswers, ex.TrainSize, fig.AUC)
	em.emit("F6b", map[string]any{
		"avg_predictive_score":   fig.AvgPredictiveScore,
		"useful_impacts":         fig.TotalUsefulImpacts,
		"contacted":              fig.TotalContacted,
		"redemption_improvement": fig.RedemptionImprovement,
		"auc":                    fig.AUC,
		"ok":                     fig.AvgPredictiveScore > 0.15 && fig.RedemptionImprovement > 0.5,
	})

	// §5.1 data description: the attribute inventory with measured sparsity.
	inv, err := ex.Pipeline.AttributeInventory()
	if err != nil {
		return err
	}
	kinds := map[string]int{}
	var emoDensity float64
	emoCols := 0
	for _, r := range inv {
		kinds[r.Kind]++
		if r.Kind == "emotional" {
			emoDensity += r.Density
			emoCols++
		}
	}
	em.printf("\n[D1] Attribute inventory (paper §5.1: 75 objective, subjective and emotional attributes)\n")
	em.printf("  measured: %d attributes (%d objective, %d subjective, %d emotional); mean emotional coverage %.0f%% after warmup+campaigns\n",
		len(inv), kinds["objective"], kinds["subjective"], kinds["emotional"], 100*emoDensity/float64(emoCols))
	em.emit("D1", map[string]any{
		"attributes": len(inv), "objective": kinds["objective"],
		"subjective": kinds["subjective"], "emotional": kinds["emotional"],
		"emotional_coverage": emoDensity / float64(emoCols),
	})

	// Baseline contrast (the "previous process").
	cfgB := cfg
	cfgB.Features = campaign.ObjectiveOnly()
	cfgB.Learner = campaign.LearnerLogistic
	figB, _, err := campaign.RunExperiment(cfgB)
	if err != nil {
		return err
	}
	em.printf("\n[F6-baseline] Objective-only logistic (pre-SPA process)\n")
	em.printf("  measured: capture@40 %.1f%% vs SPA %.1f%%; score %.1f%% vs SPA %.1f%%   %s\n",
		figB.CapturedAt40*100, fig.CapturedAt40*100,
		figB.AvgPredictiveScore*100, fig.AvgPredictiveScore*100,
		okIf(fig.CapturedAt40 > figB.CapturedAt40+0.1))
	em.emit("F6-baseline", map[string]any{
		"baseline_captured_at_40": figB.CapturedAt40,
		"spa_captured_at_40":      fig.CapturedAt40,
		"ok":                      fig.CapturedAt40 > figB.CapturedAt40+0.1,
	})

	if ablations {
		if err := runAblations(em, cfg); err != nil {
			return err
		}
	}
	if scale {
		if err := runScale(em); err != nil {
			return err
		}
		if err := runScaleServe(em, clients, requests); err != nil {
			return err
		}
		if err := runScaleServeWire(em, clients, requests); err != nil {
			return err
		}
		if err := runScaleServePipeline(em, clients, requests); err != nil {
			return err
		}
		if stages {
			if err := runStagesPass(em, "S4", clients, requests, false); err != nil {
				return err
			}
		}
		if err := runScaleServeStream(em, clients, requests); err != nil {
			return err
		}
		if stages {
			if err := runStagesPass(em, "S5", clients, requests, true); err != nil {
				return err
			}
		}
		if err := runScaleServeScenario(em, seed, clients); err != nil {
			return err
		}
		if err := runScaleServeMixed(em, seed, clients); err != nil {
			return err
		}
		if err := runScaleServeRepl(em, seed, clients); err != nil {
			return err
		}
		if err := runScaleServeCluster(em, seed, clients); err != nil {
			return err
		}
	}
	em.printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runScale is the systems-side comparison: the seed architecture (one
// global mutex, one synchronous store write per profile) against the
// sharded core with per-shard group commit, both durable with fsync on.
// The workload is internal/scalebench, shared with BenchmarkShardedIngest.
func runScale(em *emitter) error {
	const bursts = 48
	em.printf("\n[S1] Sharded core + batched write-through (%d ingest workers, fsync on)\n",
		scalebench.Workers)

	burstEvents := scalebench.MakeBursts()
	measure := func(shards int, unbatched bool) (float64, error) {
		dir, err := os.MkdirTemp("", "spabench-scale-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		spa, err := core.New(core.Options{
			DataDir:         dir,
			Store:           store.Options{SyncWrites: true},
			Shards:          shards,
			UnbatchedWrites: unbatched,
			Clock:           clock.NewSimulated(clock.Epoch),
		})
		if err != nil {
			return 0, err
		}
		defer spa.Close()
		for u := 0; u < scalebench.Users; u++ {
			if err := spa.Register(uint64(u+1), nil); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		if err := scalebench.RunWorkers(bursts, func(i int64) error {
			_, _, err := spa.IngestEvents(burstEvents[i%int64(len(burstEvents))])
			return err
		}); err != nil {
			return 0, err
		}
		return float64(bursts*scalebench.EventsPerBurst) / time.Since(start).Seconds(), nil
	}

	seedRate, err := measure(1, true)
	if err != nil {
		return err
	}
	newRate, err := measure(16, false)
	if err != nil {
		return err
	}
	em.printf("  single mutex + per-profile writes : %8.0f events/s\n", seedRate)
	em.printf("  16 shards + group commit          : %8.0f events/s   (%.1fx)   %s\n",
		newRate, newRate/seedRate, okIf(newRate >= 2*seedRate))
	em.emit("S1", map[string]any{
		"seed_events_per_sec":    seedRate,
		"sharded_events_per_sec": newRate,
		"speedup":                newRate / seedRate,
		"ok":                     newRate >= 2*seedRate,
	})
	return nil
}

// serveStack boots one durable spad stack on loopback — HTTP server,
// coalescer (optional, optionally pipelined), sharded core, fsync on — and
// hands the base URL to fn, tearing everything down afterwards. Shared by
// [S2], [S3] and [S4] so all measure the identical serving configuration.
func serveStack(coalesce, pipeline bool, shards int, fn func(baseURL string) error) error {
	return serveStackCore(coalesce, pipeline, shards, false, func(baseURL string, _ *core.SPA) error {
		return fn(baseURL)
	})
}

// serveStackCore is serveStack with the core handle exposed and the
// locked-reads baseline selectable. [S7] needs both: the propensity model
// has no training endpoint on the wire (training is an offline batch job,
// per the paper), so the section trains in-process before driving the
// mixed load, and the read-path comparison flips Options.LockedReads.
func serveStackCore(coalesce, pipeline bool, shards int, lockedReads bool, fn func(baseURL string, spa *core.SPA) error) error {
	dir, err := os.MkdirTemp("", "spabench-serve-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	spa, err := core.New(core.Options{
		DataDir:     dir,
		Store:       store.Options{SyncWrites: true},
		Shards:      shards,
		LockedReads: lockedReads,
		Clock:       clock.NewSimulated(clock.Epoch),
	})
	if err != nil {
		return err
	}
	// A short linger lets the dispatcher gather the full client wave
	// into each group commit; the off-mode server ignores it.
	srv := server.New(spa, server.Options{
		DisableCoalescing: !coalesce,
		Pipeline:          pipeline,
		MaxDelay:          2 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		spa.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer func() {
		httpSrv.Close()
		srv.Close()
		spa.Close()
	}()
	return fn("http://"+ln.Addr().String(), spa)
}

// runScaleServe is the serving-side comparison [S2]: a live spad stack on
// loopback (HTTP server, coalescer, sharded durable core, fsync on) driven
// by concurrent wire clients, with cross-request coalescing on versus off.
// The coalesced run should batch many requests into each group commit and
// win accordingly.
func runScaleServe(em *emitter, clients, requests int) error {
	em.printf("\n[S2] Serving layer: spad over loopback (%d clients, %d requests of %d events, fsync on)\n",
		clients, requests, 32*scalebench.PerUser)

	measure := func(coalesce bool) (res scalebench.LoadgenResult, err error) {
		// More shards than [S1]: a serving core is sized for many
		// concurrent callers, and the uncoalesced baseline pays one
		// group commit per shard a request touches either way.
		err = serveStack(coalesce, false, 32, func(baseURL string) error {
			res, err = scalebench.RunLoadgen(scalebench.LoadgenConfig{
				BaseURL:         baseURL,
				Clients:         clients,
				Requests:        requests,
				Register:        true,
				UsersPerRequest: 32,
			})
			return err
		})
		return res, err
	}

	// fsync latency on shared storage is noisy between runs; interleave the
	// modes and keep each one's best of two windows so the comparison
	// reflects the architecture, not which run drew the slow disk.
	var off, on scalebench.LoadgenResult
	for round := 0; round < 2; round++ {
		o, err := measure(false)
		if err != nil {
			return err
		}
		if o.EventsPerSec > off.EventsPerSec {
			off = o
		}
		c, err := measure(true)
		if err != nil {
			return err
		}
		if c.EventsPerSec > on.EventsPerSec {
			on = c
		}
	}
	speedup := 0.0
	if off.EventsPerSec > 0 {
		speedup = on.EventsPerSec / off.EventsPerSec
	}
	em.printf("  coalescing off : %8.0f events/s   p50 %6s  p99 %6s  (%d errors)\n",
		off.EventsPerSec, off.P50.Round(time.Microsecond), off.P99.Round(time.Microsecond), off.Errors)
	em.printf("  coalescing on  : %8.0f events/s   p50 %6s  p99 %6s  (%d errors, mean batch %.1f, max %d)\n",
		on.EventsPerSec, on.P50.Round(time.Microsecond), on.P99.Round(time.Microsecond),
		on.Errors, on.MeanCoalesced, on.MaxCoalesced)
	em.printf("  speedup        : %.1fx   %s\n", speedup, okIf(speedup >= 2 && on.Errors == 0 && off.Errors == 0))
	em.emit("S2", map[string]any{
		"coalesce_off": off,
		"coalesce_on":  on,
		"speedup":      speedup,
		"ok":           speedup >= 2 && on.Errors == 0 && off.Errors == 0,
	})
	return nil
}

// runScaleServeWire is the wire-format comparison [S3]: the same live
// serving stack as the coalesced [S2] run (spad on loopback, coalescing
// and fsync on), with the loadgen clients speaking JSON versus the
// length-prefixed binary framing. The codec overhead is per event, so the
// comparison uses bulk-upload-sized requests (128 users x PerUser events —
// a device syncing a day's LifeLog, not a live trickle) and a stack whose
// fsync floor (8 shards) does not drown the protocol cost under disk
// waits: JSON encode/decode then caps throughput on CPU-bound hosts and
// the binary framing pushes the bottleneck back to the store.
func runScaleServeWire(em *emitter, clients, requests int) error {
	const usersPerRequest = 128
	em.printf("\n[S3] Wire framing: binary vs JSON ingest (%d clients, %d requests of %d events, fsync on)\n",
		clients, requests, usersPerRequest*scalebench.PerUser)

	measure := func(jsonOnly bool) (res scalebench.LoadgenResult, err error) {
		err = serveStack(true, false, 8, func(baseURL string) error {
			res, err = scalebench.RunLoadgen(scalebench.LoadgenConfig{
				BaseURL:         baseURL,
				Clients:         clients,
				Requests:        requests,
				Register:        true,
				UsersPerRequest: usersPerRequest,
				JSONOnly:        jsonOnly,
			})
			return err
		})
		return res, err
	}

	// Same discipline as [S2]: interleave the modes and keep each one's
	// best of two windows, so shared-storage fsync noise cannot masquerade
	// as a protocol difference.
	var jsonRes, binRes scalebench.LoadgenResult
	for round := 0; round < 2; round++ {
		j, err := measure(true)
		if err != nil {
			return err
		}
		if j.EventsPerSec > jsonRes.EventsPerSec {
			jsonRes = j
		}
		b, err := measure(false)
		if err != nil {
			return err
		}
		if b.EventsPerSec > binRes.EventsPerSec {
			binRes = b
		}
	}
	speedup := 0.0
	if jsonRes.EventsPerSec > 0 {
		speedup = binRes.EventsPerSec / jsonRes.EventsPerSec
	}
	ok := speedup > 1 && binRes.Errors == 0 && jsonRes.Errors == 0
	em.printf("  json ingest    : %8.0f events/s   p50 %6s  p99 %6s  (%d errors)\n",
		jsonRes.EventsPerSec, jsonRes.P50.Round(time.Microsecond), jsonRes.P99.Round(time.Microsecond), jsonRes.Errors)
	em.printf("  binary ingest  : %8.0f events/s   p50 %6s  p99 %6s  (%d errors, mean batch %.1f)\n",
		binRes.EventsPerSec, binRes.P50.Round(time.Microsecond), binRes.P99.Round(time.Microsecond),
		binRes.Errors, binRes.MeanCoalesced)
	em.printf("  speedup        : %.2fx   %s\n", speedup, okIf(ok))
	em.emit("S3", map[string]any{
		"json":    jsonRes,
		"binary":  binRes,
		"speedup": speedup,
		"ok":      ok,
	})
	return nil
}

// runScaleServePipeline is the dispatcher comparison [S4]: the same stack
// as the coalesced [S2] run (spad on loopback, coalescing and fsync on, 32
// shards), with the coalescer's serialized dispatcher versus the two-stage
// pipeline. The pipeline wins on two counts: wave N+1's CPU-bound prepare
// (validation + extraction) overlaps wave N's fsync, and each wave's shard
// WriteBatches commit as one ordered store sequence paying a single WAL
// sync where the serialized per-shard commits pay one per touched shard.
func runScaleServePipeline(em *emitter, clients, requests int) error {
	em.printf("\n[S4] Commit pipelining: pipelined vs serialized dispatcher (%d clients, %d requests of %d events, fsync on)\n",
		clients, requests, 32*scalebench.PerUser)

	measure := func(pipeline bool) (res scalebench.LoadgenResult, err error) {
		err = serveStack(true, pipeline, 32, func(baseURL string) error {
			res, err = scalebench.RunLoadgen(scalebench.LoadgenConfig{
				BaseURL:         baseURL,
				Clients:         clients,
				Requests:        requests,
				Register:        true,
				UsersPerRequest: 32,
			})
			return err
		})
		return res, err
	}

	// Same discipline as [S2]/[S3]: interleave the modes and keep each
	// one's best of two windows, so shared-storage fsync noise cannot
	// masquerade as a dispatcher difference.
	var serial, piped scalebench.LoadgenResult
	for round := 0; round < 2; round++ {
		s, err := measure(false)
		if err != nil {
			return err
		}
		if s.EventsPerSec > serial.EventsPerSec {
			serial = s
		}
		p, err := measure(true)
		if err != nil {
			return err
		}
		if p.EventsPerSec > piped.EventsPerSec {
			piped = p
		}
	}
	speedup := 0.0
	if serial.EventsPerSec > 0 {
		speedup = piped.EventsPerSec / serial.EventsPerSec
	}
	ok := speedup >= 1.2 && piped.Errors == 0 && serial.Errors == 0
	em.printf("  serialized     : %8.0f events/s   p50 %6s  p99 %6s  (%d errors)\n",
		serial.EventsPerSec, serial.P50.Round(time.Microsecond), serial.P99.Round(time.Microsecond), serial.Errors)
	em.printf("  pipelined      : %8.0f events/s   p50 %6s  p99 %6s  (%d errors, mean batch %.1f)\n",
		piped.EventsPerSec, piped.P50.Round(time.Microsecond), piped.P99.Round(time.Microsecond),
		piped.Errors, piped.MeanCoalesced)
	em.printf("  speedup        : %.2fx   %s\n", speedup, okIf(ok))
	em.emit("S4", map[string]any{
		"serialized": serial,
		"pipelined":  piped,
		"speedup":    speedup,
		"ok":         ok,
	})
	return nil
}

// runScaleServeStream is the transport comparison [S5]: the same stack as
// the pipelined [S4] run (spad on loopback, coalescing, pipelining and
// fsync on, 32 shards), with the clients speaking per-request binary HTTP
// versus persistent binary streams. The stream removes the per-request
// HTTP cycle AND pipelines: each of the K clients keeps a 4-frame credit
// window in flight on its one connection, so the coalescer sees K×4
// concurrent requests instead of K stop-and-wait ones — deeper waves,
// fewer fsyncs per event. That pipelining is the capability under test:
// HTTP/1.1 cannot do it on one connection.
func runScaleServeStream(em *emitter, clients, requests int) error {
	const streamWindow = 4
	em.printf("\n[S5] Streamed ingest: persistent binary stream vs per-request binary HTTP (%d clients, %d requests of %d events, window %d, fsync on)\n",
		clients, requests, 32*scalebench.PerUser, streamWindow)

	measure := func(stream bool) (res scalebench.LoadgenResult, err error) {
		err = serveStack(true, true, 32, func(baseURL string) error {
			res, err = scalebench.RunLoadgen(scalebench.LoadgenConfig{
				BaseURL:         baseURL,
				Clients:         clients,
				Requests:        requests,
				Register:        true,
				UsersPerRequest: 32,
				Stream:          stream,
				StreamWindow:    streamWindow,
			})
			return err
		})
		return res, err
	}

	// Same discipline as [S2]-[S4]: interleave the modes and keep each
	// one's best of two windows, so shared-storage fsync noise cannot
	// masquerade as a transport difference.
	var perReq, streamed scalebench.LoadgenResult
	for round := 0; round < 2; round++ {
		p, err := measure(false)
		if err != nil {
			return err
		}
		if p.EventsPerSec > perReq.EventsPerSec {
			perReq = p
		}
		s, err := measure(true)
		if err != nil {
			return err
		}
		if s.EventsPerSec > streamed.EventsPerSec {
			streamed = s
		}
	}
	speedup := 0.0
	if perReq.EventsPerSec > 0 {
		speedup = streamed.EventsPerSec / perReq.EventsPerSec
	}
	ok := speedup > 1 && streamed.Errors == 0 && perReq.Errors == 0
	em.printf("  per-request    : %8.0f events/s   p50 %6s  p99 %6s  (%d errors)\n",
		perReq.EventsPerSec, perReq.P50.Round(time.Microsecond), perReq.P99.Round(time.Microsecond), perReq.Errors)
	em.printf("  streamed       : %8.0f events/s   p50 %6s  p99 %6s  (%d errors, mean batch %.1f)\n",
		streamed.EventsPerSec, streamed.P50.Round(time.Microsecond), streamed.P99.Round(time.Microsecond),
		streamed.Errors, streamed.MeanCoalesced)
	em.printf("  speedup        : %.2fx   %s\n", speedup, okIf(ok))
	em.emit("S5", map[string]any{
		"per_request": perReq,
		"streamed":    streamed,
		"speedup":     speedup,
		"ok":          ok,
	})
	return nil
}

// runStagesPass (spabench -stages) reruns a section's favored mode once
// more — [S4]'s pipelined dispatcher over per-request HTTP, [S5]'s over
// the persistent stream — on a fresh stack, then scrapes /metrics and
// prints the per-stage latency breakdown next to the loadgen's end-to-end
// percentiles. The cross-check: the medians of the stages a request
// traverses (decode, queue, gather, prepare, commit) should sum to
// roughly the e2e p50, within the histogram's ±9% bucket error plus the
// fan-back/transport overhead the stages don't cover.
func runStagesPass(em *emitter, section string, clients, requests int, stream bool) error {
	const streamWindow = 4
	var res scalebench.LoadgenResult
	var stats []scalebench.StageStat
	err := serveStack(true, true, 32, func(baseURL string) error {
		cfg := scalebench.LoadgenConfig{
			BaseURL:         baseURL,
			Clients:         clients,
			Requests:        requests,
			Register:        true,
			UsersPerRequest: 32,
		}
		if stream {
			cfg.Stream = true
			cfg.StreamWindow = streamWindow
		}
		var err error
		res, err = scalebench.RunLoadgen(cfg)
		if err != nil {
			return err
		}
		m, err := scalebench.FetchMetrics(baseURL)
		if err != nil {
			return err
		}
		stats = scalebench.StageBreakdown(m)
		return nil
	})
	if err != nil {
		return err
	}
	mode := "per-request binary HTTP"
	if stream {
		mode = fmt.Sprintf("persistent stream, window %d", streamWindow)
	}
	em.printf("\n[%s-stages] Stage breakdown: pipelined dispatcher, %s (instrumented pass)\n", section, mode)
	em.printf("%s", scalebench.FormatStages(stats))
	sum := scalebench.SumStageP50(stats)
	em.printf("  sum of request-path stage p50s: %s   e2e p50: %s   e2e p99: %s\n",
		sum.Round(time.Microsecond), res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	em.emit(section+"-stages", map[string]any{
		"stages":         stats,
		"sum_stage_p50":  sum.Nanoseconds(),
		"e2e_p50":        res.P50.Nanoseconds(),
		"e2e_p99":        res.P99.Nanoseconds(),
		"events_per_sec": res.EventsPerSec,
	})
	return nil
}

// runScaleServeScenario is the workload-realism section [S6]: instead of
// the uniform ingest bursts of [S2]-[S5], it replays a seed-derived
// scenario — zipf-skewed users, diurnal session sizing, mixed-endpoint
// sessions (ingest, recommendation pulls, Gradual EIT question/answer,
// campaign reward) — against the full pipelined stack, so the read path
// and the write path contend for the same shards and both report
// throughput and tail latency.
func runScaleServeScenario(em *emitter, seed uint64, clients int) error {
	const sessions = 256
	em.printf("\n[S6] Scenario replay: zipf + diurnal mixed-endpoint sessions (%d sessions, %d clients, fsync on, seed %d)\n",
		sessions, clients, seed)

	var res scalebench.ScenarioResult
	err := serveStack(true, true, 32, func(baseURL string) error {
		var err error
		res, err = scalebench.RunScenario(scalebench.ScenarioConfig{
			BaseURL:  baseURL,
			Seed:     seed,
			Clients:  clients,
			Sessions: sessions,
			Register: true,
		})
		return err
	})
	if err != nil {
		return err
	}
	// The section passes when both serving paths delivered without errors
	// and the replay was visibly skewed (the hottest 1% of users must own
	// several times their uniform session share).
	top := scalebench.Users / 100
	if top < 1 {
		top = 1
	}
	uniform := float64(top) / float64(scalebench.Users)
	ok := res.Errors == 0 && res.ReadOps > 0 && res.Top1PctShare > 2*uniform
	em.printf("  write side     : %8.0f events/s   p50 %6s  p99 %6s  (%d ops)\n",
		res.WriteEventsPerSec, res.WriteP50.Round(time.Microsecond), res.WriteP99.Round(time.Microsecond), res.WriteOps)
	em.printf("  read side      : %8.0f ops/s      p50 %6s  p99 %6s  (%d ops, %d cold)\n",
		res.ReadOpsPerSec, res.ReadP50.Round(time.Microsecond), res.ReadP99.Round(time.Microsecond), res.ReadOps, res.ColdReads)
	em.printf("  skew           : top-1%% of users own %.1f%% of sessions   (%d errors)   %s\n",
		100*res.Top1PctShare, res.Errors, okIf(ok))
	em.emit("S6", map[string]any{
		"result": res,
		"ok":     ok,
	})
	return nil
}

// runScaleServeMixed is the read-path section [S7]: a 90/10 read-heavy
// mixed workload (recommendation pulls, advice, propensity, select-top
// against concurrent ingest bursts) over the full pipelined stack, with
// the epoch-snapshot read path versus the -locked-reads baseline. Under
// the baseline a read that lands on a committing shard waits out the
// fsync the commit holds the shard write lock across, so the read tail
// inherits disk latency; under snapshots reads never take a shard lock
// and the tail stays at in-memory scale while write throughput holds.
func runScaleServeMixed(em *emitter, seed uint64, clients int) error {
	const ops = 1200
	em.printf("\n[S7] Mixed read/write: epoch-snapshot reads vs locked reads (90/10 mix, %d ops, %d clients, fsync on, seed %d)\n",
		ops, clients, seed)

	measure := func(locked bool) (res scalebench.MixedResult, err error) {
		err = serveStackCore(true, true, 32, locked, func(baseURL string, spa *core.SPA) error {
			// Warm population + CF interactions (a near-write-only pass),
			// then train the propensity model in-process so every read in
			// the measured mix is answerable.
			warm, err := scalebench.RunMixed(scalebench.MixedConfig{
				BaseURL: baseURL, Seed: seed, Clients: clients,
				Ops: 64, ReadFraction: 0.01, Register: true,
			})
			if err != nil {
				return err
			}
			if warm.Errors > 0 {
				return fmt.Errorf("warmup: %d errors", warm.Errors)
			}
			var feats [][]float64
			var labels []bool
			for id := uint64(1); id <= scalebench.Users; id++ {
				fv, err := spa.FeatureVector(id)
				if err != nil {
					return err
				}
				feats = append(feats, fv)
				labels = append(labels, id%2 == 0)
			}
			if err := spa.TrainPropensity(feats, labels); err != nil {
				return err
			}
			res, err = scalebench.RunMixed(scalebench.MixedConfig{
				BaseURL: baseURL,
				Seed:    seed,
				Clients: clients,
				Ops:     ops,
			})
			return err
		})
		return res, err
	}

	// Same discipline as [S2]-[S5]: interleave the modes and keep each
	// one's best of two windows — here the window with the best read tail,
	// since the read p99 is the number under test.
	var locked, snap scalebench.MixedResult
	better := func(a, b scalebench.MixedResult) bool {
		if b.ReadP99 == 0 {
			return true
		}
		return a.ReadP99 > 0 && a.ReadP99 < b.ReadP99
	}
	for round := 0; round < 2; round++ {
		l, err := measure(true)
		if err != nil {
			return err
		}
		if better(l, locked) {
			locked = l
		}
		s, err := measure(false)
		if err != nil {
			return err
		}
		if better(s, snap) {
			snap = s
		}
	}
	gainP99 := 0.0
	if snap.ReadP99 > 0 {
		gainP99 = float64(locked.ReadP99) / float64(snap.ReadP99)
	}
	gainP50 := 0.0
	if snap.ReadP50 > 0 {
		gainP50 = float64(locked.ReadP50) / float64(snap.ReadP50)
	}
	writeRatio := 0.0
	if locked.WriteEventsPerSec > 0 {
		writeRatio = snap.WriteEventsPerSec / locked.WriteEventsPerSec
	}
	// The lock-free read path must beat the locked baseline ≥3x somewhere in
	// the latency distribution while holding write throughput. On a host
	// with spare cores the p99 carries the signal (locked reads wait out
	// fsync-length lock windows; snapshot reads never do); on a saturated
	// single-core host the p99 of both modes floors at scheduler queueing
	// and the median carries it instead — so either gain qualifies.
	ok := (gainP99 >= 3 || gainP50 >= 3) && gainP99 > 1 &&
		snap.Errors == 0 && locked.Errors == 0 && writeRatio >= 0.9
	em.printf("  locked reads   : reads %8.0f ops/s  p50 %6s  p99 %6s | writes %8.0f events/s  p99 %6s  (%d errors)\n",
		locked.ReadOpsPerSec, locked.ReadP50.Round(time.Microsecond), locked.ReadP99.Round(time.Microsecond),
		locked.WriteEventsPerSec, locked.WriteP99.Round(time.Microsecond), locked.Errors)
	em.printf("  snapshot reads : reads %8.0f ops/s  p50 %6s  p99 %6s | writes %8.0f events/s  p99 %6s  (%d errors)\n",
		snap.ReadOpsPerSec, snap.ReadP50.Round(time.Microsecond), snap.ReadP99.Round(time.Microsecond),
		snap.WriteEventsPerSec, snap.WriteP99.Round(time.Microsecond), snap.Errors)
	em.printf("  read gain      : p50 %.1fx  p99 %.1fx   write throughput held: %.0f%%   %s\n",
		gainP50, gainP99, writeRatio*100, okIf(ok))
	em.emit("S7", map[string]any{
		"locked_reads":   locked,
		"snapshot_reads": snap,
		"read_p50_gain":  gainP50,
		"read_p99_gain":  gainP99,
		"write_ratio":    writeRatio,
		"ok":             ok,
	})
	return nil
}

// runScaleServeRepl is the replication section [S8]: the same 90/10 mixed
// read/write workload as [S7], against a leader plus one streaming
// follower (the WAL-shipping pair of DESIGN.md §9). Writes land on the
// leader; the routed clients spread reads round-robin across both nodes,
// gated on the follower's reported staleness. The section reports the
// aggregate read throughput against a single-node baseline measured on the
// same stack — with the follower attached and shipping either way, so the
// comparison isolates where the reads go, not the cost of having a
// follower — plus the staleness distribution the follower actually
// exhibited while serving its share of the reads.
func runScaleServeRepl(em *emitter, seed uint64, clients int) error {
	const (
		ops      = 1200
		lagBound = 64
	)
	em.printf("\n[S8] Replicated reads: leader + 1 follower vs single node (90/10 mix, %d ops, %d clients, staleness bound %d waves, fsync on, seed %d)\n",
		ops, clients, lagBound, seed)

	var single, dual scalebench.MixedResult
	var stale scalebench.Staleness
	err := serveStackCore(true, true, 32, false, func(baseURL string, spa *core.SPA) error {
		leaderAddr := strings.TrimPrefix(baseURL, "http://")

		// Boot the follower before any traffic, so the whole population
		// and its CF interactions replicate over the live stream
		// (interaction counts are process-local and travel only in wave
		// annotations — a snapshot-bootstrapped follower would answer
		// recommendations cold).
		fdir, err := os.MkdirTemp("", "spabench-follower-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(fdir)
		// The follower runs with fsync off: durability is the leader's
		// contract, and a replica that loses its tail re-subscribes from
		// whatever LSN its log replays to (or re-bootstraps) — so the
		// read-scaling node does not pay a second fsync per shipped wave.
		if _, err := server.BootstrapFollower(fdir, leaderAddr, store.Options{}); err != nil {
			return err
		}
		fspa, err := core.New(core.Options{
			DataDir: fdir,
			Shards:  32,
			Clock:   clock.NewSimulated(clock.Epoch),
		})
		if err != nil {
			return err
		}
		fsrv := server.New(fspa, server.Options{FollowerOf: leaderAddr})
		fln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fsrv.Close()
			fspa.Close()
			return err
		}
		fhttp := &http.Server{Handler: fsrv}
		go fhttp.Serve(fln)
		followerURL := "http://" + fln.Addr().String()
		defer func() {
			fhttp.Close()
			fsrv.Close()
			fspa.Close()
		}()

		// Warm population + CF interactions on the leader, then train the
		// propensity model on BOTH cores: the model ships out-of-band
		// (training is an offline batch job, per the paper), so each node
		// loads its own copy.
		warm, err := scalebench.RunMixed(scalebench.MixedConfig{
			BaseURL: baseURL, Seed: seed, Clients: clients,
			Ops: 64, ReadFraction: 0.01, Register: true,
		})
		if err != nil {
			return err
		}
		if warm.Errors > 0 {
			return fmt.Errorf("warmup: %d errors", warm.Errors)
		}
		if err := waitFollower(baseURL, followerURL, 30*time.Second); err != nil {
			return err
		}
		for _, node := range []*core.SPA{spa, fspa} {
			var feats [][]float64
			var labels []bool
			for id := uint64(1); id <= scalebench.Users; id++ {
				fv, err := node.FeatureVector(id)
				if err != nil {
					return err
				}
				feats = append(feats, fv)
				labels = append(labels, id%2 == 0)
			}
			if err := node.TrainPropensity(feats, labels); err != nil {
				return err
			}
		}

		// Single-node baseline: every read on the leader ([S7]'s snapshot
		// configuration, follower attached but idle on the read side).
		single, err = scalebench.RunMixed(scalebench.MixedConfig{
			BaseURL: baseURL, Seed: seed, Clients: clients, Ops: ops,
		})
		if err != nil {
			return err
		}
		if err := waitFollower(baseURL, followerURL, 30*time.Second); err != nil {
			return err
		}

		// Two-node run: same workload, reads split across both nodes, the
		// follower's lag sampled throughout.
		stop := make(chan struct{})
		staleCh := make(chan scalebench.Staleness, 1)
		go func() {
			staleCh <- scalebench.SampleFollowerLag(followerURL, 10*time.Millisecond, stop)
		}()
		dual, err = scalebench.RunMixed(scalebench.MixedConfig{
			BaseURL:           baseURL,
			Seed:              seed + 1,
			Clients:           clients,
			Ops:               ops,
			ReadFrom:          []string{followerURL},
			MaxStalenessWaves: lagBound,
		})
		close(stop)
		stale = <-staleCh
		return err
	})
	if err != nil {
		return err
	}
	scaling := 0.0
	if single.ReadOpsPerSec > 0 {
		scaling = dual.ReadOpsPerSec / single.ReadOpsPerSec
	}
	// The scaling target (≥1.6x aggregate reads at 2 nodes) needs the two
	// nodes on separate cores: with ≥4 usable cores the single-node
	// baseline saturates its serving capacity and the follower's core is
	// genuinely additive. On a smaller host both nodes time-share one CPU,
	// so added capacity is physically zero and the criterion degrades to
	// "replication must not crater the stack": reads within 60% of single
	// node while every shipped wave is applied, fsynced and sampled. Either
	// way staleness must be bounded and observed, with zero errors.
	clean := single.Errors == 0 && dual.Errors == 0 &&
		stale.Samples > 0 && stale.P95 <= lagBound
	scalingFloor := 1.6
	if runtime.NumCPU() < 4 {
		scalingFloor = 0.6
	}
	ok := clean && scaling >= scalingFloor
	em.printf("  single node    : reads %8.0f ops/s  p50 %6s  p99 %6s | writes %8.0f events/s  (%d errors)\n",
		single.ReadOpsPerSec, single.ReadP50.Round(time.Microsecond), single.ReadP99.Round(time.Microsecond),
		single.WriteEventsPerSec, single.Errors)
	em.printf("  leader+follower: reads %8.0f ops/s  p50 %6s  p99 %6s | writes %8.0f events/s  (%d errors)\n",
		dual.ReadOpsPerSec, dual.ReadP50.Round(time.Microsecond), dual.ReadP99.Round(time.Microsecond),
		dual.WriteEventsPerSec, dual.Errors)
	em.printf("  read scaling   : %.2fx (target %.1fx on %d cpus)   staleness p50 %d  p95 %d  max %d waves (%d samples, bound %d)   %s\n",
		scaling, scalingFloor, runtime.NumCPU(), stale.P50, stale.P95, stale.Max, stale.Samples, lagBound, okIf(ok))
	em.emit("S8", map[string]any{
		"single":        single,
		"dual":          dual,
		"read_scaling":  scaling,
		"scaling_floor": scalingFloor,
		"cpus":          runtime.NumCPU(),
		"staleness":     stale,
		"ok":            ok,
	})
	return nil
}

// runScaleServeCluster is the cluster section [S9]: the [S6] scenario
// replay against a 3-node slot-partitioned cluster (DESIGN.md §10) with
// topology-routed clients, versus the same replay against one node of the
// identical stack configuration. Three properties are under test: the
// slot map spreads both slots and users across the nodes (within 2x of
// the ideal share), aggregate ingest scales with the node count when the
// host has the cores to back it, and a live slot handoff under write load
// loses no acknowledged write — checked by mirroring every acknowledged
// batch into a standalone shadow node and comparing the moved users'
// profiles byte-for-byte afterwards.
func runScaleServeCluster(em *emitter, seed uint64, clients int) error {
	const (
		sessions = 256
		numNodes = 3
	)
	em.printf("\n[S9] Cluster: %d slot-partitioned nodes vs single node (zipf scenario, %d sessions, %d clients, fsync on, seed %d)\n",
		numNodes, sessions, clients, seed)

	// Single-node baseline: the same scenario on the same stack shape.
	var single scalebench.ScenarioResult
	err := serveStack(true, true, 32, func(baseURL string) error {
		var err error
		single, err = scalebench.RunScenario(scalebench.ScenarioConfig{
			BaseURL: baseURL, Seed: seed, Clients: clients,
			Sessions: sessions, Register: true,
		})
		return err
	})
	if err != nil {
		return err
	}

	var clusterRes scalebench.ScenarioResult
	slotsOwned := make([]int, numNodes)
	usersOwned := make([]int, numNodes)
	var handoff wire.HandoffResponse
	lost := -1
	moved := 0
	err = clusterStack(numNodes, func(ids, urls []string) error {
		var err error
		clusterRes, err = scalebench.RunScenario(scalebench.ScenarioConfig{
			Endpoints: urls, Cluster: true, Seed: seed, Clients: clients,
			Sessions: sessions, Register: true,
		})
		if err != nil {
			return err
		}
		for i, u := range urls {
			m, err := scalebench.FetchMetrics(u)
			if err != nil {
				return err
			}
			slotsOwned[i] = int(m.ClusterSlotsOwned)
			usersOwned[i] = int(m.Users)
		}
		handoff, lost, moved, err = clusterHandoffCheck(ids, urls)
		return err
	})
	if err != nil {
		return err
	}

	scaling := 0.0
	if single.WriteEventsPerSec > 0 {
		scaling = clusterRes.WriteEventsPerSec / single.WriteEventsPerSec
	}
	// Balance: no node may own more than twice its ideal slot share, and
	// every node must own something (the deterministic epoch-1 map is
	// round-robin, so this is really a check that routing respected it).
	ideal := keyspace.NumSlots / numNodes
	balanced := true
	for _, n := range slotsOwned {
		if n == 0 || n > 2*ideal {
			balanced = false
		}
	}
	// Like [S8], the scaling target needs real cores behind the nodes:
	// with ≥4 CPUs three nodes commit on independent fsync streams and
	// aggregate ingest must reach ≥2x the single node. On a smaller host
	// the nodes time-share one CPU and the criterion degrades to "routing
	// and ownership enforcement must not crater throughput" (≥0.5x).
	scalingFloor := 2.0
	if runtime.NumCPU() < 4 {
		scalingFloor = 0.5
	}
	ok := single.Errors == 0 && clusterRes.Errors == 0 && balanced &&
		scaling >= scalingFloor && moved > 0 && handoff.Epoch > 1 && lost == 0
	em.printf("  single node    : %8.0f events/s   write p99 %6s  read p99 %6s  (%d errors)\n",
		single.WriteEventsPerSec, single.WriteP99.Round(time.Microsecond),
		single.ReadP99.Round(time.Microsecond), single.Errors)
	em.printf("  %d-node cluster : %8.0f events/s   write p99 %6s  read p99 %6s  (%d errors)\n",
		numNodes, clusterRes.WriteEventsPerSec, clusterRes.WriteP99.Round(time.Microsecond),
		clusterRes.ReadP99.Round(time.Microsecond), clusterRes.Errors)
	em.printf("  balance        : slots %v (ideal %d, bound %d)   users %v\n",
		slotsOwned, ideal, 2*ideal, usersOwned)
	em.printf("  ingest scaling : %.2fx (target %.1fx on %d cpus)\n",
		scaling, scalingFloor, runtime.NumCPU())
	em.printf("  live handoff   : %d slots moved, epoch %d, %d mismatched profiles of the moved users   %s\n",
		moved, handoff.Epoch, lost, okIf(ok))
	em.emit("S9", map[string]any{
		"single":        single,
		"cluster":       clusterRes,
		"write_scaling": scaling,
		"scaling_floor": scalingFloor,
		"cpus":          runtime.NumCPU(),
		"slots_owned":   slotsOwned,
		"users_owned":   usersOwned,
		"handoff_moved": moved,
		"handoff_epoch": handoff.Epoch,
		"lost_profiles": lost,
		"ok":            ok,
	})
	return nil
}

// clusterStack boots an n-node durable spad cluster on loopback — every
// node a full [S6]-shape stack (pipelined coalescer, 32 shards, fsync on)
// plus the cluster layer — and hands fn the node IDs and base URLs in the
// same order. Listeners are bound before any node starts so the peer map
// can name every advertised address up front.
func clusterStack(n int, fn func(ids, urls []string) error) error {
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	ids := make([]string, n)
	urls := make([]string, n)
	peers := make(map[string]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ids[i] = string(rune('a' + i))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		cleanup = append(cleanup, func() { ln.Close() })
		listeners[i] = ln
		peers[ids[i]] = ln.Addr().String()
		urls[i] = "http://" + peers[ids[i]]
	}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "spabench-cluster-*")
		if err != nil {
			return err
		}
		cleanup = append(cleanup, func() { os.RemoveAll(dir) })
		spa, err := core.New(core.Options{
			DataDir: dir,
			Store:   store.Options{SyncWrites: true},
			Shards:  32,
			Clock:   clock.NewSimulated(clock.Epoch),
		})
		if err != nil {
			return err
		}
		srv := server.New(spa, server.Options{
			Pipeline:      true,
			MaxDelay:      2 * time.Millisecond,
			ClusterNodeID: ids[i],
			ClusterAddr:   peers[ids[i]],
			ClusterPeers:  peers,
			ClusterDir:    dir,
		})
		httpSrv := &http.Server{Handler: srv}
		go httpSrv.Serve(listeners[i])
		cleanup = append(cleanup, func() {
			httpSrv.Close()
			srv.Close()
			spa.Close()
		})
	}
	return fn(ids, urls)
}

// clusterHandoffCheck is [S9]'s no-acked-write-loss probe: a writer keeps
// ingesting to users owned by the last node while the second node pulls
// every slot away from it (wire.HandoffPath with FromNode), and every
// acknowledged batch is mirrored into a standalone in-memory shadow spad.
// The cores run frozen simulated clocks and see identical event streams,
// so after the handoff the moved users' sensibility documents on the new
// owner must be byte-identical to the shadow's — any drift means a write
// was acknowledged by the cluster and then lost in the move. Returns the
// handoff response, the mismatch count, and how many slots moved.
func clusterHandoffCheck(ids, urls []string) (wire.HandoffResponse, int, int, error) {
	var handoff wire.HandoffResponse
	fail := func(err error) (wire.HandoffResponse, int, int, error) {
		return handoff, -1, 0, err
	}

	var topo wire.Topology
	if err := getJSON(urls[0]+wire.TopologyPath, &topo); err != nil {
		return fail(err)
	}
	if err := topo.Validate(); err != nil {
		return fail(err)
	}

	// Shadow: a plain single-node in-memory stack, no cluster layer.
	sspa, err := core.New(core.Options{Shards: 4, Clock: clock.NewSimulated(clock.Epoch)})
	if err != nil {
		return fail(err)
	}
	ssrv := server.New(sspa, server.Options{Pipeline: true})
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ssrv.Close()
		sspa.Close()
		return fail(err)
	}
	shttp := &http.Server{Handler: ssrv}
	go shttp.Serve(sln)
	shadowURL := "http://" + sln.Addr().String()
	defer func() {
		shttp.Close()
		ssrv.Close()
		sspa.Close()
	}()

	// Fresh users (far above the scenario population) whose slots the
	// source node owns right now, per the actual published map.
	src, target := ids[len(ids)-1], urls[1]
	var users []uint64
	for id := uint64(1_000_000); len(users) < 12 && id < 1_010_000; id++ {
		if topo.Slots[keyspace.Partition(id)] == src {
			users = append(users, id)
		}
	}
	if len(users) < 12 {
		return fail(fmt.Errorf("no users partition to node %s", src))
	}

	rc := spaclient.New(urls[0], spaclient.Options{Cluster: true})
	sc := spaclient.New(shadowURL, spaclient.Options{})
	for _, u := range users {
		if err := rc.Register(u, nil); err != nil {
			return fail(err)
		}
		if err := sc.Register(u, nil); err != nil {
			return fail(err)
		}
	}

	// ingest retries through the handoff fence (503 + Retry-After) but
	// nothing else; the 421 bounce after the flip is the routed client's
	// own job. Every batch is one owner group, so a fenced batch was
	// rejected whole and the retry cannot double-apply.
	ingest := func(batch []lifelog.Event) error {
		for attempt := 0; ; attempt++ {
			_, err := rc.Ingest(batch)
			var apiErr *spaclient.APIError
			if err != nil && errors.As(err, &apiErr) &&
				apiErr.Status == http.StatusServiceUnavailable && attempt < 500 {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return err
		}
	}

	const rounds = 60
	handoffDone := make(chan error, 1)
	cursor := clock.Epoch
	for r := 0; r < rounds; r++ {
		if r == rounds/3 {
			go func() {
				handoffDone <- postJSON(target+wire.HandoffPath,
					wire.HandoffRequest{FromNode: src}, &handoff)
			}()
		}
		batch := make([]lifelog.Event, 0, len(users))
		for _, u := range users {
			cursor = cursor.Add(13 * time.Second)
			batch = append(batch, lifelog.Event{
				UserID: u, Time: cursor, Type: lifelog.EventClick,
				Action: uint32(r % 7), Value: 1,
			})
		}
		if err := ingest(batch); err != nil {
			return fail(fmt.Errorf("ingest round %d: %w", r, err))
		}
		if _, err := sc.Ingest(batch); err != nil {
			return fail(fmt.Errorf("shadow mirror round %d: %w", r, err))
		}
		// Stretch the write window so the transfer genuinely overlaps it.
		time.Sleep(time.Millisecond)
	}
	if err := <-handoffDone; err != nil {
		return fail(fmt.Errorf("handoff: %w", err))
	}
	if handoff.Moved == 0 {
		return fail(fmt.Errorf("handoff moved 0 slots (epoch %d)", handoff.Epoch))
	}

	// Gossip must converge every node on the post-flip epoch before the
	// survivors can be probed deterministically.
	deadline := time.Now().Add(15 * time.Second)
	for {
		settled := true
		for _, u := range urls {
			var t wire.Topology
			if err := getJSON(u+wire.TopologyPath, &t); err != nil || t.Epoch < handoff.Epoch {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("cluster never converged on epoch %d", handoff.Epoch))
		}
		time.Sleep(20 * time.Millisecond)
	}

	lost := 0
	for _, u := range users {
		path := fmt.Sprintf("/v1/users/%d/sensibilities", u)
		got, err := getBody(target + path)
		if err != nil {
			lost++
			continue
		}
		want, err := getBody(shadowURL + path)
		if err != nil {
			return fail(fmt.Errorf("shadow read: %w", err))
		}
		if !bytes.Equal(got, want) {
			lost++
		}
	}
	return handoff, lost, handoff.Moved, nil
}

// getJSON decodes a GET response body into out, insisting on 200.
func getJSON(url string, out any) error {
	raw, err := getBody(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// getBody GETs url and returns the body, insisting on 200.
func getBody(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	return raw, nil
}

// postJSON POSTs in as JSON and decodes the 200 response into out.
func postJSON(url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	return json.Unmarshal(raw, out)
}

// waitFollower blocks until the follower reports a streaming session
// caught up to the leader's position at call time.
func waitFollower(leaderURL, followerURL string, timeout time.Duration) error {
	lc := spaclient.New(leaderURL, spaclient.Options{})
	fc := spaclient.New(followerURL, spaclient.Options{})
	lst, err := lc.ReplicationStatus()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for {
		st, err := fc.ReplicationStatus()
		if err == nil && st.State == "streaming" && st.AppliedLSN >= lst.AppliedLSN && st.LastHeartbeatUnixNano > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower %s never caught up to lsn %d (last: %+v, err: %v)",
				followerURL, lst.AppliedLSN, st, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runTorture is the CLI half of the torture repro contract: a failing
// sweep (here or in CI) prints a schedule seed, and
// `spabench -torture -seed N` replays exactly that schedule. Without an
// explicit -seed it sweeps fresh schedules under -torture-budget.
func runTorture(seed uint64, replayOne bool, budget time.Duration, schedules int) error {
	if replayOne {
		dir, err := os.MkdirTemp("", "spabench-torture-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Printf("[torture] replaying schedule seed %d\n", seed)
		res, err := torture.RunSchedule(seed, dir)
		if err != nil {
			return err
		}
		fmt.Printf("[torture] clean: %d waves, %d faults fired, %d reopens\n",
			res.Waves, res.Faults, res.Reopens)
		return nil
	}
	fmt.Printf("[torture] sweep: seed %d, budget %v\n", seed, budget)
	rep := torture.Run(torture.Config{
		Seed:      seed,
		Budget:    budget,
		Schedules: schedules,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if rep.Err != nil {
		return fmt.Errorf("%w\nrepro: spabench -torture -seed %d", rep.Err, rep.FailedSeed)
	}
	fmt.Printf("[torture] clean: %d schedules, %d waves, %d faults fired, %d reopens in %v\n",
		rep.Schedules, rep.Waves, rep.Faults, rep.Reopens, rep.Elapsed.Round(time.Millisecond))
	return nil
}

// runLoadgen drives an external spad and reports one S2-style record.
func runLoadgen(em *emitter, baseURL string, clients, requests int, stream, register bool) error {
	transport := "per-request"
	if stream {
		transport = "streamed"
	}
	em.printf("[loadgen] %s — %d clients, %d requests (%s)\n", baseURL, clients, requests, transport)
	res, err := scalebench.RunLoadgen(scalebench.LoadgenConfig{
		BaseURL:  baseURL,
		Clients:  clients,
		Requests: requests,
		Register: register,
		Stream:   stream,
	})
	if err != nil {
		return err
	}
	em.printf("  throughput : %8.0f events/s (%d events in %v)\n",
		res.EventsPerSec, res.Events, res.Duration.Round(time.Millisecond))
	em.printf("  latency    : p50 %s  p95 %s  p99 %s\n",
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	em.printf("  coalescing : mean batch %.1f, max %d\n", res.MeanCoalesced, res.MaxCoalesced)
	em.printf("  errors     : %d of %d requests\n", res.Errors, res.Requests)
	em.emit("loadgen", map[string]any{"result": res, "base_url": baseURL})
	return nil
}

// runStreamSmoke is the CI drain probe: open one persistent stream, keep
// shipping frames until the daemon begins its shutdown drain (SIGTERM in
// the CI job), and report how many frames were acknowledged. Every
// acknowledged frame was committed before its answer was written, so
// "acked >= 2 and the stream ended in a drain, not a hang" is exactly
// "SIGTERM mid-stream commits the in-flight frames". Output is one JSON
// object on stdout for the job to assert with jq.
func runStreamSmoke(baseURL string) error {
	c := spaclient.New(baseURL, spaclient.Options{Timeout: 10 * time.Second})
	const user = 3_000_000
	if err := c.Register(user, nil); err != nil {
		var apiErr *spaclient.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
			return fmt.Errorf("register: %w", err)
		}
	}
	si := c.Stream(spaclient.StreamOptions{})
	defer si.Close()

	acked := 0
	stopErr := ""
	base := time.Now()
	deadline := base.Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev := []lifelog.Event{{
			UserID: user,
			Time:   base.Add(time.Duration(acked) * time.Millisecond),
			Type:   lifelog.EventClick,
			Action: 7,
		}}
		resp, err := si.Ingest(ev)
		if err != nil {
			// Expected terminal condition: the daemon drained and closed
			// (or refused the redial while draining).
			stopErr = err.Error()
			break
		}
		if resp.Processed != 1 {
			return fmt.Errorf("frame %d: processed %d", acked, resp.Processed)
		}
		acked++
		// A gentle pace keeps frames in flight across the SIGTERM without
		// racing through the 30s budget.
		time.Sleep(5 * time.Millisecond)
	}
	out := map[string]any{"acked": acked, "drained": stopErr != "", "stop_error": stopErr}
	json.NewEncoder(os.Stdout).Encode(out)
	if acked < 2 {
		return fmt.Errorf("only %d frames acknowledged before drain", acked)
	}
	if stopErr == "" {
		return errors.New("stream never observed the daemon drain")
	}
	return nil
}

func runAblations(em *emitter, base campaign.ExperimentConfig) error {
	em.printf("\n[A1] Feature-set ablation (svm-pegasos)\n")
	a1 := []map[string]any{}
	for _, fsel := range []campaign.FeatureSet{
		campaign.ObjectiveOnly(),
		{Objective: true, Subjective: true},
		campaign.FullFeatures(),
	} {
		cfg := base
		cfg.Features = fsel
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		em.printf("  %-4s capture@40 %5.1f%%  score %5.1f%%  AUC %.3f\n",
			fsel, fig.CapturedAt40*100, fig.AvgPredictiveScore*100, fig.AUC)
		a1 = append(a1, map[string]any{
			"features": fmt.Sprint(fsel), "captured_at_40": fig.CapturedAt40,
			"score": fig.AvgPredictiveScore, "auc": fig.AUC,
		})
	}
	em.emit("A1", map[string]any{"rows": a1})

	em.printf("\n[A2] Learner ablation (features OSE)\n")
	a2 := []map[string]any{}
	for _, l := range []campaign.Learner{
		campaign.LearnerSVM, campaign.LearnerSVMDual, campaign.LearnerLogistic,
		campaign.LearnerRandom, campaign.LearnerPopularity,
	} {
		cfg := base
		cfg.Learner = l
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		em.printf("  %-12s capture@40 %5.1f%%  score %5.1f%%\n",
			l, fig.CapturedAt40*100, fig.AvgPredictiveScore*100)
		a2 = append(a2, map[string]any{
			"learner": fmt.Sprint(l), "captured_at_40": fig.CapturedAt40,
			"score": fig.AvgPredictiveScore,
		})
	}
	em.emit("A2", map[string]any{"rows": a2})

	em.printf("\n[A3] Reward/punish loop ablation\n")
	a3 := []map[string]any{}
	for _, update := range []bool{true, false} {
		cfg := base
		cfg.UpdateSUM = update
		fig, _, err := campaign.RunExperiment(cfg)
		if err != nil {
			return err
		}
		em.printf("  update=%-5v capture@40 %5.1f%%  score %5.1f%%  AUC %.3f\n",
			update, fig.CapturedAt40*100, fig.AvgPredictiveScore*100, fig.AUC)
		a3 = append(a3, map[string]any{
			"update": update, "captured_at_40": fig.CapturedAt40,
			"score": fig.AvgPredictiveScore, "auc": fig.AUC,
		})
	}
	em.emit("A3", map[string]any{"rows": a3})
	return nil
}

func okIf(ok bool) string {
	if ok {
		return "[OK]"
	}
	return "[MISMATCH]"
}
